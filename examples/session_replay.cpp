// Session management end to end (paper §7): run a session, f.places, tear
// everything down ("log out"), replay the generated .xinitrc-replacement,
// and watch swm restore every client — including one running on a remote
// machine — to its geometry, icon position, sticky and iconic state.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/swm/session.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

namespace {

constexpr char kResources[] =
    "swm*virtualDesktop: 400x160\n"
    "swm*panner: False\n"
    "swm*remoteStartup: rsh %h 'setenv DISPLAY unix:0; %c'\n";

std::unique_ptr<xlib::ClientApp> Launch(xserver::Server* server, const std::string& name,
                                        const std::string& clazz,
                                        const std::string& machine,
                                        const xbase::Rect& geometry) {
  xlib::ClientAppConfig config;
  config.name = name;
  config.wm_class = {name, clazz};
  config.command = {name};
  config.machine = machine;
  config.geometry = geometry;
  auto app = std::make_unique<xlib::ClientApp>(server, config);
  app->Map();
  return app;
}

void Describe(swm::WindowManager& wm, xserver::Server& server,
              const xlib::ClientApp& app) {
  swm::ManagedClient* client = wm.FindClient(app.window());
  if (client == nullptr) {
    std::printf("  %-8s: unmanaged!\n", app.config().name.c_str());
    return;
  }
  auto geometry = server.GetGeometry(app.window());
  std::printf("  %-8s: %dx%d at desktop (%d,%d)%s%s%s\n", client->name.c_str(),
              geometry->width, geometry->height, client->ClientDesktopPosition().x,
              client->ClientDesktopPosition().y, client->sticky ? " [sticky]" : "",
              client->state == xproto::WmState::kIconic ? " [iconic]" : "",
              client->restored_from_session ? " [restored]" : "");
}

}  // namespace

int main() {
  auto server = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 80, false}});
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.resources = kResources;
  auto wm = std::make_unique<swm::WindowManager>(server.get(), options);
  if (!wm->Start()) {
    return 1;
  }

  // The session: a local editor, a sticky clock, an iconified shell, and a
  // remote load monitor.
  auto editor = Launch(server.get(), "editor", "Editor", "localhost", {0, 0, 60, 20});
  auto clock = Launch(server.get(), "oclock", "Clock", "localhost", {0, 0, 14, 7});
  auto shell = Launch(server.get(), "xterm", "XTerm", "localhost", {0, 0, 48, 16});
  auto xload = Launch(server.get(), "xload", "XLoad", "crunch.far.edu", {0, 0, 20, 8});
  wm->ProcessEvents();
  wm->MoveFrameTo(wm->FindClient(editor->window()), {250, 60});
  wm->SetSticky(wm->FindClient(clock->window()), true);
  wm->Iconify(wm->FindClient(shell->window()));
  wm->MoveFrameTo(wm->FindClient(xload->window()), {300, 100});
  wm->ProcessEvents();

  std::printf("session before logout:\n");
  for (const auto* app : {editor.get(), clock.get(), shell.get(), xload.get()}) {
    Describe(*wm, *server, *app);
  }

  // f.places writes the .xinitrc replacement.
  wm->ExecuteCommandString("f.places", 0);
  std::string places = wm->last_places();
  std::printf("\n---- generated places file ----\n%s----\n\n", places.c_str());

  // "Log out": clients exit, swm exits, the X server shuts down.
  editor.reset();
  clock.reset();
  shell.reset();
  xload.reset();
  wm.reset();
  server.reset();

  // "Log in": a fresh server; the places file replays.
  server = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 80, false}});
  std::vector<swm::SwmHintsRecord> records = swm::ParsePlacesFile(places);
  xlib::Display seeder(server.get(), "localhost");
  for (const swm::SwmHintsRecord& record : records) {
    swm::AppendSwmHints(&seeder, 0, record);  // What the swmhints program does.
  }
  // The clients restart with default geometry requests — the whole point is
  // that swm overrides them from the saved session.
  editor = Launch(server.get(), "editor", "Editor", "localhost", {0, 0, 30, 10});
  clock = Launch(server.get(), "oclock", "Clock", "localhost", {0, 0, 10, 5});
  shell = Launch(server.get(), "xterm", "XTerm", "localhost", {0, 0, 30, 10});
  xload = Launch(server.get(), "xload", "XLoad", "crunch.far.edu", {0, 0, 10, 5});

  wm = std::make_unique<swm::WindowManager>(server.get(), options);
  if (!wm->Start()) {
    return 1;
  }
  wm->ProcessEvents();

  std::printf("session after restart (restored from swmhints):\n");
  for (const auto* app : {editor.get(), clock.get(), shell.get(), xload.get()}) {
    Describe(*wm, *server, *app);
  }
  return 0;
}
