// Two-process operation: this process boots the server + swm and hosts a
// listening unix socket (xserver::WireHost); a fork()ed child process
// connects with xlib::Display::FromEnv() over $SWM_SOCKET, creates and maps
// a window, and swm decorates it exactly as it would an in-process client.
// When the child exits, the server discovers EOF through the event loop,
// closes the connection with a typed reason, and sweeps the client's
// windows — the crash-tolerant lifecycle from docs/PROTOCOL.md
// ("Out-of-process operation").
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/swm/wm.h"
#include "src/xlib/display.h"
#include "src/xserver/server.h"
#include "src/xserver/wire_host.h"

int main() {
  // '@' = abstract-namespace socket: no filesystem entry, nothing to clean.
  const std::string socket_path =
      "@swm-two-process-" + std::to_string(::getpid());

  xserver::Server server({xserver::ScreenConfig{80, 28, false}});

  swm::WindowManager::Options wm_options;
  wm_options.template_name = "openlook";
  wm_options.resources =
      "swm*virtualDesktop: 320x112\n"
      "swm*panner: False\n"
      "swm.transport.stallMs: 2000\n";  // picked up by TransportLimits()
  swm::WindowManager wm(&server, wm_options);
  if (!wm.Start()) {
    std::cerr << "another window manager is running?\n";
    return 1;
  }

  xserver::WireHostOptions host_options;
  host_options.limits = wm.TransportLimits();
  xserver::WireHost host(&server, socket_path, std::move(host_options));
  if (!host.ok()) {
    std::cerr << "cannot listen on " << socket_path << "\n";
    return 1;
  }

  // Two pipes make the demo deterministic: `ready` (child -> parent: my
  // window is mapped) and `go` (parent -> child: I rendered, you may exit).
  int ready[2] = {-1, -1}, go[2] = {-1, -1};
  if (::pipe(ready) != 0 || ::pipe(go) != 0) { return 1; }

  pid_t child = ::fork();
  if (child == 0) {
    // ---- client process ---------------------------------------------------
    ::close(ready[0]);
    ::close(go[1]);
    ::setenv("SWM_SOCKET", host.socket_path().c_str(), 1);
    std::unique_ptr<xlib::Display> display =
        xlib::Display::FromEnv("remote-box");
    if (display == nullptr || !display->Connected()) { ::_exit(2); }

    xproto::WindowId win =
        display->CreateWindow(display->RootWindow(0), {4, 3, 30, 8});
    display->SetStringProperty(win, "WM_NAME", "remote xclock");
    display->MapWindow(win);
    // A reply-bearing query proves the duplex path works end to end.
    if (!display->GetGeometry(win).has_value()) { ::_exit(3); }

    char byte = 'R';
    (void)!::write(ready[1], &byte, 1);
    (void)!::read(go[0], &byte, 1);  // wait for the parent's rendering
    ::_exit(display->ErrorCount() == 0 && display->wire_stats().wire_fallbacks == 0
                ? 0
                : 4);
  }

  // ---- server process -------------------------------------------------------
  ::close(ready[1]);
  ::close(go[0]);
  ::fcntl(ready[0], F_SETFL, O_NONBLOCK);

  // Serve (accept, dispatch, reply) until the child reports its window up,
  // letting swm decorate each redirected map as it arrives.
  bool child_ready = host.RunUntil(
      [&]() {
        wm.ProcessEvents();
        char byte = 0;
        return ::read(ready[0], &byte, 1) == 1;
      },
      5000);
  wm.ProcessEvents();
  if (!child_ready) {
    std::cerr << "child never mapped its window\n";
    return 1;
  }

  std::cout << "remote client connected from another process; swm manages "
            << wm.ClientCount() << " client(s)\n";
  std::cout << "\n---- screen (remote client decorated) ----\n"
            << server.RenderScreen(0).ToString();

  // Let the child exit, then watch the event loop observe EOF: the
  // connection closes with a typed reason and the client's windows vanish.
  char byte = 'G';
  (void)!::write(go[1], &byte, 1);
  int status = 0;
  ::waitpid(child, &status, 0);
  host.RunUntil([&]() { return host.connection_count() == 0; }, 5000);
  wm.ProcessEvents();

  std::cout << "\nchild exited with status "
            << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
            << "; connection closed kPeerClosed="
            << host.closed_with(xserver::CloseReason::kPeerClosed)
            << ", windows swept, swm manages " << wm.ClientCount()
            << " client(s)\n";
  std::cout << "\n---- screen (after disconnect) ----\n"
            << server.RenderScreen(0).ToString();
  return 0;
}
