// Quickstart: boot the simulated X server, start swm with the OpenLook+
// template, map an xclock-like client, interact with it, and print the
// decorated screen (the paper's Figure 1 decoration around a live client).
#include <cstdio>
#include <iostream>

#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

int main() {
  // A small screen keeps the ASCII rendering readable.
  xserver::Server server({xserver::ScreenConfig{80, 28, false}});

  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.resources = "swm*virtualDesktop: 320x112\nswm*panner: False\n";
  swm::WindowManager wm(&server, options);
  if (!wm.Start()) {
    std::cerr << "another window manager is running?\n";
    return 1;
  }

  // An xclock-like client maps its window; the map is redirected to swm,
  // which reparents it into the openLook decoration.
  xlib::ClientAppConfig config;
  config.name = "xclock";
  config.wm_class = {"xclock", "XClock"};
  config.command = {"xclock", "-geometry", "100x100"};
  config.geometry = {0, 0, 36, 10};
  xlib::ClientApp xclock(&server, config);
  xclock.Map();
  wm.ProcessEvents();
  xclock.ProcessEvents();

  swm::ManagedClient* managed = wm.FindClient(xclock.window());
  if (managed == nullptr) {
    std::cerr << "swm did not manage the client!\n";
    return 1;
  }
  std::cout << "swm manages \"" << managed->name << "\" with decoration '"
            << managed->decoration_name << "'\n";
  std::cout << "frame geometry: " << managed->FrameGeometry().ToString() << "\n";

  // Move it via the window manager, the way a binding would.
  wm.MoveFrameTo(managed, {6, 3});
  wm.ProcessEvents();
  xclock.ProcessEvents();
  std::cout << "client believes it is at (" << xclock.believed_root_position().x << ","
            << xclock.believed_root_position().y << ") on its root\n\n";

  std::cout << "---- screen ----\n" << server.RenderScreen(0).ToString();

  // Iconify through the ICCCM channel, then deiconify via a wm function.
  xclock.RequestIconify();
  wm.ProcessEvents();
  std::cout << "\nafter iconify: state="
            << xproto::WmStateName(managed->state) << "\n";
  std::cout << "\n---- screen (iconified) ----\n" << server.RenderScreen(0).ToString();

  wm.ExecuteCommandString("f.deiconify(XClock)", 0);
  wm.ProcessEvents();
  std::cout << "\nafter f.deiconify(XClock): state="
            << xproto::WmStateName(managed->state) << "\n";
  return 0;
}
