// The swmcmd client (paper §4.5): "a way to execute window manager commands
// by typing them into a shell running in an xterm."  Reads commands from
// stdin (or runs a scripted demo when stdin is not a terminal feed) and
// sends each through the SWM_COMMAND root property.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/swm/swmcmd.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

int main(int argc, char** argv) {
  xserver::Server server({xserver::ScreenConfig{70, 22, false}});
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.resources = "swm*panner: False\n";
  swm::WindowManager wm(&server, options);
  if (!wm.Start()) {
    return 1;
  }

  xlib::ClientAppConfig config;
  config.name = "xterm";
  config.wm_class = {"xterm", "XTerm"};
  config.command = {"xterm"};
  config.geometry = {0, 0, 40, 10};
  xlib::ClientApp xterm(&server, config);
  xterm.Map();
  wm.ProcessEvents();

  // The "shell" connection swmcmd would run inside.
  xlib::Display shell(&server, "localhost");

  auto run = [&](const std::string& command) {
    std::printf("$ swmcmd %s\n", command.c_str());
    swm::SendSwmCommand(&shell, 0, command);
    wm.ProcessEvents();
    if (wm.awaiting_target()) {
      // The paper: "The pointer would be changed to a question mark
      // prompting you to select a window."  Select the xterm.
      std::printf("  (pointer is now a question mark; clicking the xterm)\n");
      xbase::Point pos = server.RootPosition(xterm.window());
      server.SimulateMotion({pos.x + 1, pos.y + 1});
      server.SimulateButton(1, true);
      server.SimulateButton(1, false);
      wm.ProcessEvents();
    }
    swm::ManagedClient* client = wm.FindClient(xterm.window());
    if (client != nullptr) {
      std::printf("  xterm state: %s, frame at %s\n\n",
                  xproto::WmStateName(client->state).c_str(),
                  client->FrameGeometry().ToString().c_str());
    }
  };

  if (argc > 1 && std::string(argv[1]) == "--stdin") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) {
        run(line);
      }
    }
    return 0;
  }

  // Scripted demo of the §4.4.1 invocation modes.
  run("f.iconify(XTerm)");    // By class.
  run("f.deiconify(XTerm)");
  run("f.raise");             // Prompts for a window, like the paper's example.
  char by_id[48];
  std::snprintf(by_id, sizeof(by_id), "f.lower(#0x%x)", xterm.window());
  run(by_id);                 // By explicit window id.
  run("f.save f.zoom");       // Two functions in one command (prompted).
  run("f.restore(XTerm)");
  std::printf("final screen:\n%s", server.RenderScreen(0).ToString().c_str());
  return 0;
}
