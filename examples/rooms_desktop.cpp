// Rooms on the Virtual Desktop (paper §6): "it is very easy to implement a
// rooms like environment by grouping windows into various quadrants of the
// desktop."  Four rooms, a sticky clock and mail notifier that stay on the
// glass, and panner-driven navigation between rooms.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/swm/panner.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

namespace {

std::unique_ptr<xlib::ClientApp> Launch(xserver::Server* server, const std::string& name,
                                        const std::string& clazz,
                                        const xbase::Rect& geometry) {
  xlib::ClientAppConfig config;
  config.name = name;
  config.wm_class = {name, clazz};
  config.command = {name};
  config.geometry = geometry;
  auto app = std::make_unique<xlib::ClientApp>(server, config);
  app->Map();
  return app;
}

}  // namespace

int main() {
  xserver::Server server({xserver::ScreenConfig{76, 26, false}});

  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.resources =
      "swm*virtualDesktop: 152x52\n"   // 2x2 rooms of one screen each.
      "swm*panner: True\n"
      "swm*pannerScale: 4\n"
      "swm*XClock*sticky: True\n"
      "swm*XBiff*sticky: True\n";
  swm::WindowManager wm(&server, options);
  if (!wm.Start()) {
    return 1;
  }

  // The standard environment: clock + mail notifier, stuck to the glass.
  auto clock = Launch(&server, "xclock", "XClock", {0, 0, 10, 4});
  auto biff = Launch(&server, "xbiff", "XBiff", {0, 0, 10, 4});
  wm.ProcessEvents();
  wm.MoveFrameTo(wm.FindClient(clock->window()), {1, 18});
  wm.MoveFrameTo(wm.FindClient(biff->window()), {13, 18});

  // One application per room.
  struct Room {
    const char* name;
    xbase::Point origin;
  };
  const Room rooms[] = {{"editor", {0, 0}},
                        {"mailer", {76, 0}},
                        {"debugger", {0, 26}},
                        {"browser", {76, 26}}};
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  for (const Room& room : rooms) {
    apps.push_back(Launch(&server, room.name, "Tool", {0, 0, 30, 9}));
    wm.ProcessEvents();
    wm.MoveFrameTo(wm.FindClient(apps.back()->window()),
                   {room.origin.x + 6, room.origin.y + 3});
  }
  wm.ProcessEvents();

  for (const Room& room : rooms) {
    wm.vdesk(0)->PanTo(room.origin);
    wm.panner(0)->Update();
    wm.ProcessEvents();
    std::printf("==== room: %s (desktop offset %d,%d) ====\n%s\n", room.name,
                wm.vdesk(0)->offset().x, wm.vdesk(0)->offset().y,
                server.RenderScreen(0).ToString().c_str());
  }

  // The panner can jump rooms too: click its lower-right quadrant.
  swm::Panner* panner = wm.panner(0);
  xbase::Point origin = server.RootPosition(panner->window());
  server.SimulateMotion({origin.x + 28, origin.y + 10});
  server.SimulateButton(1, true);
  server.SimulateButton(1, false);
  wm.ProcessEvents();
  std::printf("after a panner click, the desktop offset is %d,%d\n",
              wm.vdesk(0)->offset().x, wm.vdesk(0)->offset().y);
  return 0;
}
