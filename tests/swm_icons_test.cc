// Icons: appearance panels, placement, holders and root icons
// (paper §4.1.2–§4.1.5).
#include "src/xlib/icccm.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::IconHolder;
using swm::ManagedClient;

TEST_F(SwmTest, IconifyBuildsIconAppearancePanel) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->Iconify(client);
  wm_->ProcessEvents();

  EXPECT_EQ(client->state, xproto::WmState::kIconic);
  ASSERT_NE(client->icon, nullptr);
  // The template's Xicon panel: iconimage above iconname (Fig. in §4.1.2).
  oi::Object* image = client->icon->FindDescendant("iconimage");
  oi::Object* name = client->icon->FindDescendant("iconname");
  ASSERT_NE(image, nullptr);
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(static_cast<oi::Button*>(image)->has_image());  // xlogo32 default.
  EXPECT_EQ(static_cast<oi::Button*>(name)->label(), "xterm");
  EXPECT_LT(image->geometry().y, name->geometry().y);

  // Frame and client hidden; icon viewable.
  EXPECT_FALSE(server_->IsViewable(client->frame->window()));
  EXPECT_FALSE(server_->IsViewable(app->window()));
  EXPECT_TRUE(server_->IsViewable(client->icon->window()));

  // WM_STATE records Iconic + the icon window (ICCCM).
  auto state = xlib::GetWmState(&app->display(), app->window());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->state, xproto::WmState::kIconic);
  EXPECT_EQ(state->icon_window, client->icon->window());
}

TEST_F(SwmTest, DeiconifyRestores) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  xbase::Rect geometry = client->FrameGeometry();
  wm_->Iconify(client);
  wm_->ProcessEvents();
  wm_->Deiconify(client);
  wm_->ProcessEvents();
  EXPECT_EQ(client->state, xproto::WmState::kNormal);
  EXPECT_TRUE(server_->IsViewable(app->window()));
  EXPECT_FALSE(server_->IsViewable(client->icon->window()));
  EXPECT_EQ(client->FrameGeometry(), geometry);
}

TEST_F(SwmTest, IconClickDeiconifies) {
  // Template binding: <Btn1> on iconimage/iconname -> f.deiconify; the
  // icon tree resolves to its owning client.
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->Iconify(client);
  wm_->ProcessEvents();
  oi::Object* image = client->icon->FindDescendant("iconimage");
  xbase::Point pos = ObjectRootPos(image);
  Click({pos.x + 2, pos.y + 2});
  EXPECT_EQ(client->state, xproto::WmState::kNormal);
}

TEST_F(SwmTest, InitialStateIconicFromWmHints) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "bg";
  config.wm_class = {"bg", "Background"};
  config.initial_state = xproto::WmState::kIconic;
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(app.window());
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->state, xproto::WmState::kIconic);
  EXPECT_FALSE(server_->IsViewable(app.window()));
}

TEST_F(SwmTest, IconPositionFromWmHints) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "pinned";
  config.wm_class = {"pinned", "Pinned"};
  xlib::ClientApp app(server_.get(), config);
  xproto::WmHints hints;
  hints.flags = xproto::kIconPositionHint;
  hints.icon_position = {44, 33};
  xlib::SetWmHints(&app.display(), app.window(), hints);
  app.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(app.window());
  wm_->Iconify(client);
  wm_->ProcessEvents();
  EXPECT_EQ(client->icon->geometry().origin(), (xbase::Point{44, 33}));
}

TEST_F(SwmTest, FreeIconsGetDistinctSlots) {
  StartWm();
  auto a = Spawn("a", {"a", "A"});
  auto b = Spawn("b", {"b", "B"});
  wm_->Iconify(Managed(*a));
  wm_->Iconify(Managed(*b));
  wm_->ProcessEvents();
  EXPECT_NE(Managed(*a)->icon->geometry().origin(),
            Managed(*b)->icon->geometry().origin());
}

TEST_F(SwmTest, IconPositionRememberedAcrossCycles) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->Iconify(client);
  wm_->ProcessEvents();
  // Move the icon (as a drag would), then deiconify/iconify again.
  client->icon->SetGeometry(
      xbase::Rect{70, 20, client->icon->geometry().width,
                  client->icon->geometry().height});
  wm_->Deiconify(client);
  wm_->Iconify(client);
  wm_->ProcessEvents();
  EXPECT_EQ(client->icon->geometry().origin(), (xbase::Point{70, 20}));
}

TEST_F(SwmTest, CustomIconPixmapNameUsed) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "round";
  config.wm_class = {"round", "Round"};
  config.icon_pixmap_name = "circle";
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(app.window());
  wm_->Iconify(client);
  wm_->ProcessEvents();
  auto* image = static_cast<oi::Button*>(client->icon->FindDescendant("iconimage"));
  ASSERT_TRUE(image->has_image());
  EXPECT_LE(image->PreferredSize().width, 20);  // circle(16), not xlogo(32).
}

TEST_F(SwmTest, IconNameTracksProperty) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->Iconify(client);
  wm_->ProcessEvents();
  xlib::SetWmIconName(&app->display(), app->window(), "tiny");
  wm_->ProcessEvents();
  auto* name = static_cast<oi::Button*>(client->icon->FindDescendant("iconname"));
  EXPECT_EQ(name->label(), "tiny");
}

// ---- Icon holders ------------------------------------------------------------------

class IconHolderTest : public SwmTest {
 protected:
  static constexpr char kHolderResources[] =
      "swm*iconHolders: termBox other\n"
      "swm*iconHolder.termBox.geometry: 60x30+120+4\n"
      "swm*iconHolder.termBox.class: XTerm\n"
      "swm*iconHolder.other.geometry: 60x30+120+44\n"
      "swm*iconHolder.other.hideWhenEmpty: True\n";
};

TEST_F(IconHolderTest, HoldersCreatedFromResources) {
  StartWm(kHolderResources);
  auto holders = wm_->icon_holders(0);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0]->name(), "termBox");
  EXPECT_EQ(holders[0]->class_filter(), "XTerm");
  EXPECT_TRUE(holders[1]->hide_when_empty());
  // hideWhenEmpty holder starts hidden; the other is mapped.
  EXPECT_TRUE(server_->IsViewable(holders[0]->window()));
  EXPECT_FALSE(server_->IsViewable(holders[1]->window()));
}

TEST_F(IconHolderTest, ClassFilterRoutesIcons) {
  // §4.1.5: "group all xterm icons in one panel, and other icons in a
  // separate panel".
  StartWm(kHolderResources);
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  wm_->Iconify(Managed(*term));
  wm_->Iconify(Managed(*clock));
  wm_->ProcessEvents();

  auto holders = wm_->icon_holders(0);
  EXPECT_EQ(Managed(*term)->icon_holder, holders[0]);
  EXPECT_EQ(Managed(*clock)->icon_holder, holders[1]);
  // Icons are parented inside the holders (actual icons are managed, not a
  // fixed representation like twm's icon manager).
  EXPECT_EQ(server_->QueryTree(Managed(*term)->icon->window())->parent,
            holders[0]->window());
}

TEST_F(IconHolderTest, HideWhenEmptyShowsAndHides) {
  StartWm(kHolderResources);
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  IconHolder* other = wm_->icon_holders(0)[1];
  EXPECT_FALSE(server_->IsViewable(other->window()));
  wm_->Iconify(Managed(*clock));
  wm_->ProcessEvents();
  EXPECT_TRUE(server_->IsViewable(other->window()));
  wm_->Deiconify(Managed(*clock));
  wm_->ProcessEvents();
  EXPECT_FALSE(server_->IsViewable(other->window()));
}

TEST_F(IconHolderTest, IconsLayOutInRows) {
  StartWm(
      "swm*iconHolders: box\n"
      "swm*iconHolder.box.geometry: 46x90+100+4\n");
  IconHolder* box = wm_->icon_holders(0)[0];
  auto a = Spawn("a", {"a", "A"});
  auto b = Spawn("b", {"b", "B"});
  wm_->Iconify(Managed(*a));
  wm_->Iconify(Managed(*b));
  wm_->ProcessEvents();
  ASSERT_EQ(box->icons().size(), 2u);
  xbase::Rect ga = Managed(*a)->icon->geometry();
  xbase::Rect gb = Managed(*b)->icon->geometry();
  // Icons (xlogo32-based, ~34 wide) don't fit side by side in 46 cells:
  // the second wraps to a new row.
  EXPECT_EQ(ga.x, gb.x);
  EXPECT_GT(gb.y, ga.y);
  EXPECT_FALSE(ga.Intersects(gb));
}

TEST_F(IconHolderTest, SizeToFitGrowsWithIcons) {
  StartWm(
      "swm*iconHolders: fit\n"
      "swm*iconHolder.fit.geometry: 44x10+100+4\n"
      "swm*iconHolder.fit.sizeToFit: True\n");
  IconHolder* fit = wm_->icon_holders(0)[0];
  xbase::Rect before = *server_->GetGeometry(fit->window());
  auto a = Spawn("a", {"a", "A"});
  wm_->Iconify(Managed(*a));
  wm_->ProcessEvents();
  xbase::Rect after = *server_->GetGeometry(fit->window());
  EXPECT_GT(after.height, before.height);  // Grew to fit the icon.
}

TEST_F(IconHolderTest, UnmanageRemovesFromHolder) {
  StartWm(kHolderResources);
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  wm_->Iconify(Managed(*term));
  wm_->ProcessEvents();
  IconHolder* box = wm_->icon_holders(0)[0];
  EXPECT_EQ(box->icons().size(), 1u);
  term->display().DestroyWindow(term->window());
  wm_->ProcessEvents();
  EXPECT_TRUE(box->icons().empty());
}

// ---- Root icons ----------------------------------------------------------------------

TEST_F(SwmTest, RootIconsCreatedFromResources) {
  // §4.1.3: icon appearance panels with no client; they cannot be
  // deiconified but have bindings.
  StartWm(
      "swm*rootIcons: trash\n"
      "swm*panel.trash: button iconimage +C+0 button iconname +C+1\n"
      "swm*rootIcon.trash.geometry: +150+60\n");
  // Rendered and mapped at the configured position.
  bool found = false;
  xbase::Canvas canvas = server_->RenderScreen(0);
  for (int y = 55; y < 75 && !found; ++y) {
    for (int x = 145; x < 180 && !found; ++x) {
      if (canvas.At(x, y) == '#') {
        found = true;  // Icon image pixels.
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SwmTest, RootIconBindingsFire) {
  StartWm(
      "swm*rootIcons: trash\n"
      "swm*panel.trash: button iconimage +C+0\n"
      "swm*rootIcon.trash.geometry: +150+60\n"
      "swm*panel.trash.button.iconimage.bindings: <Btn1> : f.exec(empty-trash)\n");
  Click({160, 65});
  EXPECT_EQ(wm_->executed_commands(),
            (std::vector<std::string>{"empty-trash"}));
}

// ---- Root panels ------------------------------------------------------------------------

TEST_F(SwmTest, RootPanelIsReparentedAndFunctional) {
  // §4.1.4 and Figure 2: root panels are treated like client windows
  // (reparented) and their buttons drive WM functions.
  StartWm("swm*rootPanels: RootPanel\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});

  // Exactly one internal managed client beyond the xterm: the root panel.
  ManagedClient* panel_client = nullptr;
  for (ManagedClient* client : wm_->Clients()) {
    if (client->is_internal) {
      panel_client = client;
    }
  }
  ASSERT_NE(panel_client, nullptr);
  EXPECT_EQ(panel_client->wm_class.clazz, "SwmRootPanel");
  EXPECT_NE(panel_client->frame, nullptr);  // Reparented like Figure 2.

  // Click its "iconify" button: prompts for a window (no current client).
  oi::Object* iconify_button = nullptr;
  for (xproto::WindowId wid = 1; wid < 3000; ++wid) {
    oi::Object* candidate = wm_->toolkit(0).FindObject(wid);
    if (candidate != nullptr && candidate->name() == "iconify") {
      iconify_button = candidate;
    }
  }
  ASSERT_NE(iconify_button, nullptr);
  xbase::Point pos = ObjectRootPos(iconify_button);
  Click({pos.x + 1, pos.y + 1});
  EXPECT_TRUE(wm_->awaiting_target());
  // Select the xterm.
  xbase::Point target = server_->RootPosition(app->window());
  Click({target.x + 1, target.y + 1});
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kIconic);
}

}  // namespace
}  // namespace swm_test
