#include "src/base/geometry.h"

#include <gtest/gtest.h>

namespace xbase {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{3, 4};
  Point b{-1, 10};
  EXPECT_EQ((a + b), (Point{2, 14}));
  EXPECT_EQ((a - b), (Point{4, -6}));
  EXPECT_EQ(a, (Point{3, 4}));
  EXPECT_NE(a, b);
}

TEST(SizeTest, EmptyAndArea) {
  EXPECT_TRUE((Size{0, 5}.IsEmpty()));
  EXPECT_TRUE((Size{5, 0}.IsEmpty()));
  EXPECT_TRUE((Size{-1, 3}.IsEmpty()));
  EXPECT_FALSE((Size{1, 1}.IsEmpty()));
  EXPECT_EQ((Size{100, 200}.Area()), 20000);
  EXPECT_EQ((Size{32767, 32767}.Area()), 32767LL * 32767LL);  // No overflow.
}

TEST(RectTest, EdgesAndContainment) {
  Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.Left(), 10);
  EXPECT_EQ(r.Top(), 20);
  EXPECT_EQ(r.Right(), 40);
  EXPECT_EQ(r.Bottom(), 60);
  EXPECT_TRUE(r.Contains(Point{10, 20}));
  EXPECT_TRUE(r.Contains(Point{39, 59}));
  EXPECT_FALSE(r.Contains(Point{40, 20}));  // Right edge is exclusive.
  EXPECT_FALSE(r.Contains(Point{10, 60}));
  EXPECT_TRUE(r.Contains(Rect{10, 20, 30, 40}));
  EXPECT_TRUE(r.Contains(Rect{15, 25, 5, 5}));
  EXPECT_FALSE(r.Contains(Rect{15, 25, 30, 5}));
}

TEST(RectTest, IntersectionAndUnion) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 10, 10};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersection(b), (Rect{5, 5, 5, 5}));
  EXPECT_EQ(a.Union(b), (Rect{0, 0, 15, 15}));

  Rect c{20, 20, 5, 5};
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersection(c).IsEmpty());

  // Union with empty ignores the empty side.
  EXPECT_EQ(a.Union(Rect{}), a);
  EXPECT_EQ(Rect{}.Union(a), a);
}

TEST(RectTest, AdjacentRectsDoNotIntersect) {
  Rect a{0, 0, 10, 10};
  Rect b{10, 0, 10, 10};
  EXPECT_FALSE(a.Intersects(b));
}

TEST(RectTest, Translated) {
  EXPECT_EQ((Rect{1, 2, 3, 4}.Translated(10, -2)), (Rect{11, 0, 3, 4}));
}

TEST(ParseGeometryTest, FullSpec) {
  auto spec = ParseGeometry("120x120+1010+359");  // From the paper's §7 example.
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->width, 120);
  EXPECT_EQ(spec->height, 120);
  EXPECT_EQ(spec->x, 1010);
  EXPECT_EQ(spec->y, 359);
  EXPECT_FALSE(spec->x_negative);
  EXPECT_FALSE(spec->y_negative);
}

TEST(ParseGeometryTest, SizeOnly) {
  auto spec = ParseGeometry("100x50");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->width, 100);
  EXPECT_EQ(spec->height, 50);
  EXPECT_FALSE(spec->x.has_value());
}

TEST(ParseGeometryTest, PositionOnly) {
  auto spec = ParseGeometry("+0+0");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->width.has_value());
  EXPECT_EQ(spec->x, 0);
  EXPECT_EQ(spec->y, 0);
}

TEST(ParseGeometryTest, NegativeOffsets) {
  auto spec = ParseGeometry("80x24-10-20");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->x_negative);
  EXPECT_TRUE(spec->y_negative);
  EXPECT_EQ(spec->x, -10);
  EXPECT_EQ(spec->y, -20);
}

TEST(ParseGeometryTest, LeadingEqualsAccepted) {
  EXPECT_TRUE(ParseGeometry("=80x24").has_value());
}

TEST(ParseGeometryTest, Malformed) {
  EXPECT_FALSE(ParseGeometry("").has_value());
  EXPECT_FALSE(ParseGeometry("abc").has_value());
  EXPECT_FALSE(ParseGeometry("100").has_value());
  EXPECT_FALSE(ParseGeometry("100x").has_value());
  EXPECT_FALSE(ParseGeometry("100x50+3").has_value());
  EXPECT_FALSE(ParseGeometry("100x50+3+").has_value());
  EXPECT_FALSE(ParseGeometry("100x50+3+4junk").has_value());
  EXPECT_FALSE(ParseGeometry("99999999999x5").has_value());
}

TEST(GeometrySpecTest, ResolveNegativeAgainstParent) {
  GeometrySpec spec = *ParseGeometry("10x10-0-0");
  Rect resolved = spec.Resolve(Size{100, 50}, Size{1, 1});
  EXPECT_EQ(resolved, (Rect{90, 40, 10, 10}));
}

TEST(GeometrySpecTest, ResolveUsesFallbackSize) {
  GeometrySpec spec = *ParseGeometry("+5+6");
  Rect resolved = spec.Resolve(Size{100, 50}, Size{20, 30});
  EXPECT_EQ(resolved, (Rect{5, 6, 20, 30}));
}

// Round trip: parse(ToString(spec)) == spec for full specs.
struct GeometryCase {
  int w;
  int h;
  int x;
  int y;
};

class GeometryRoundTrip : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometryRoundTrip, ParseFormatsBack) {
  const GeometryCase& c = GetParam();
  Rect r{c.x, c.y, c.w, c.h};
  auto spec = ParseGeometry(r.ToString());
  ASSERT_TRUE(spec.has_value()) << r.ToString();
  EXPECT_EQ(spec->width, c.w);
  EXPECT_EQ(spec->height, c.h);
  EXPECT_EQ(spec->x, c.x);
  EXPECT_EQ(spec->y, c.y);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeometryRoundTrip,
                         ::testing::Values(GeometryCase{1, 1, 0, 0},
                                           GeometryCase{100, 100, 100, 100},
                                           GeometryCase{120, 120, 1010, 359},
                                           GeometryCase{32767, 32767, 0, 0},
                                           GeometryCase{640, 480, 512, 342}));

}  // namespace
}  // namespace xbase
