#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/oi/toolkit.h"
#include "src/xserver/server.h"

namespace oi {
namespace {

// ---- Panel definition parsing --------------------------------------------------

TEST(ObjectPositionTest, ParseForms) {
  EXPECT_EQ(ParseObjectPosition("+0+0"),
            (ObjectPosition{HAlign::kLeft, 0, 0}));
  EXPECT_EQ(ParseObjectPosition("+C+0"),
            (ObjectPosition{HAlign::kCenter, 0, 0}));
  EXPECT_EQ(ParseObjectPosition("-0+0"),
            (ObjectPosition{HAlign::kRight, 0, 0}));
  EXPECT_EQ(ParseObjectPosition("+3+1"),
            (ObjectPosition{HAlign::kLeft, 3, 1}));
  EXPECT_EQ(ParseObjectPosition("-1+0"),
            (ObjectPosition{HAlign::kRight, 1, 0}));
}

TEST(ObjectPositionTest, Malformed) {
  EXPECT_FALSE(ParseObjectPosition("").has_value());
  EXPECT_FALSE(ParseObjectPosition("0+0").has_value());
  EXPECT_FALSE(ParseObjectPosition("+x+0").has_value());
  EXPECT_FALSE(ParseObjectPosition("+0+").has_value());
  EXPECT_FALSE(ParseObjectPosition("+0+0extra").has_value());
  EXPECT_FALSE(ParseObjectPosition("-C+0").has_value());  // Center can't be right-bound.
}

TEST(ObjectPositionTest, RoundTrip) {
  for (const char* text : {"+0+0", "+C+1", "-2+3", "+10+5"}) {
    auto pos = ParseObjectPosition(text);
    ASSERT_TRUE(pos.has_value()) << text;
    EXPECT_EQ(pos->ToString(), text);
  }
}

TEST(PanelDefTest, PaperOpenLookDefinition) {
  // Verbatim from the paper §4.1.1 (after resource-continuation joining).
  auto items = ParsePanelDefinition(
      "button pulldown +0+0 button name +C+0 button nail -0+0 panel client +0+1");
  ASSERT_TRUE(items.has_value());
  ASSERT_EQ(items->size(), 4u);
  EXPECT_EQ((*items)[0].type, ObjectType::kButton);
  EXPECT_EQ((*items)[0].name, "pulldown");
  EXPECT_EQ((*items)[1].position.align, HAlign::kCenter);
  EXPECT_EQ((*items)[2].position.align, HAlign::kRight);
  EXPECT_EQ((*items)[3].type, ObjectType::kPanel);
  EXPECT_EQ((*items)[3].name, "client");
  EXPECT_EQ((*items)[3].position.row, 1);
}

TEST(PanelDefTest, PaperRootPanelDefinition) {
  auto items = ParsePanelDefinition(
      "button quit +0+0 button restart +1+0 button iconify +2+0 button deiconify +3+0 "
      "button move +0+1 button resize +1+1 button raise +2+1 button lower +3+1");
  ASSERT_TRUE(items.has_value());
  EXPECT_EQ(items->size(), 8u);
  EXPECT_EQ((*items)[7].position.row, 1);
  EXPECT_EQ((*items)[7].position.column, 3);
}

TEST(PanelDefTest, Malformed) {
  EXPECT_FALSE(ParsePanelDefinition("").has_value());
  EXPECT_FALSE(ParsePanelDefinition("button foo").has_value());       // Not ×3.
  EXPECT_FALSE(ParsePanelDefinition("widget foo +0+0").has_value());  // Bad type.
  EXPECT_FALSE(ParsePanelDefinition("button foo nowhere").has_value());
}

// ---- Toolkit fixture -------------------------------------------------------------

class ToolkitTest : public ::testing::Test {
 protected:
  ToolkitTest()
      : server_({xserver::ScreenConfig{200, 100, false}}), dpy_(&server_, "wm") {
    toolkit_ = std::make_unique<Toolkit>(&dpy_, &db_, 0);
    toolkit_->SetResourcePrefix({"swm", "color", "screen0"},
                                {"Swm", "Color", "Screen0"});
  }

  std::optional<std::string> Definition(const std::string& name) {
    return db_.Get({"swm", "color", "screen0", "panel", name},
                   {"Swm", "Color", "Screen0", "Panel", name});
  }

  xserver::Server server_;
  xlib::Display dpy_;
  xrdb::ResourceDatabase db_;
  std::unique_ptr<Toolkit> toolkit_;
};

TEST_F(ToolkitTest, ButtonAttributesFromResources) {
  db_.Put("swm*button.ok.label", "OK!");
  db_.Put("swm*button.ok.background", "=");
  db_.Put("swm*button.ok.bindings", "<Btn1> : f.raise");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "ok");
  EXPECT_EQ(button->label(), "OK!");
  ASSERT_EQ(button->bindings().size(), 1u);
  EXPECT_EQ(button->bindings()[0].functions[0].name, "f.raise");
  EXPECT_EQ(server_.FindWindowForTest(button->window())->background, '=');
}

TEST_F(ToolkitTest, AttributeGenericAcrossTypes) {
  // Paper §2: any object can be treated as a generic base object when
  // dealing with attributes.
  db_.Put("swm*color.screen0*myAttr", "shared");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "b");
  auto text = toolkit_->CreateText(nullptr, dpy_.RootWindow(0), "t");
  auto panel = toolkit_->CreatePanel(nullptr, dpy_.RootWindow(0), "p");
  Object* objects[] = {button.get(), text.get(), panel.get()};
  for (Object* object : objects) {
    EXPECT_EQ(object->Attribute("myAttr"), "shared");
  }
}

TEST_F(ToolkitTest, BuildPanelTreeFromDefinition) {
  db_.Put("swm*panel.openLook",
          "button pulldown +0+0 button name +C+0 button nail -0+0 panel client +0+1");
  auto tree = toolkit_->BuildPanelTree(
      "openLook", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->children().size(), 4u);
  EXPECT_NE(tree->FindDescendant("client"), nullptr);
  EXPECT_NE(tree->FindDescendant("name"), nullptr);
  EXPECT_EQ(tree->FindDescendant("client")->type(), ObjectType::kPanel);
  // Every object has its own X window under the tree root.
  EXPECT_EQ(server_.QueryTree(tree->window())->children.size(), 4u);
}

TEST_F(ToolkitTest, BuildNestedPanels) {
  db_.Put("swm*panel.outer", "panel inner +0+0 button b +0+1");
  db_.Put("swm*panel.inner", "button x +0+0 button y +1+0");
  auto tree = toolkit_->BuildPanelTree(
      "outer", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  ASSERT_NE(tree, nullptr);
  Object* inner = tree->FindDescendant("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(static_cast<Panel*>(inner)->children().size(), 2u);
  EXPECT_NE(tree->FindDescendant("y"), nullptr);
}

TEST_F(ToolkitTest, BuildDetectsCycles) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  db_.Put("swm*panel.a", "panel b +0+0");
  db_.Put("swm*panel.b", "panel a +0+0");
  auto tree = toolkit_->BuildPanelTree(
      "a", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  ASSERT_NE(tree, nullptr);  // Cycle degrades to a plain container.
  Object* b = tree->FindDescendant("b");
  ASSERT_NE(b, nullptr);
  Object* nested_a = static_cast<Panel*>(b)->FindDescendant("a");
  // The nested 'a' stops the recursion (empty container).
  if (nested_a != nullptr) {
    EXPECT_TRUE(static_cast<Panel*>(nested_a)->children().empty());
  }
}

TEST_F(ToolkitTest, BuildMissingDefinitionFails) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  auto tree = toolkit_->BuildPanelTree(
      "nonexistent", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  EXPECT_EQ(tree, nullptr);
}

TEST_F(ToolkitTest, RowLayoutLeftCenterRight) {
  db_.Put("swm*panel.bar",
          "button lft +0+0 button mid +C+0 button rgt -0+0 panel client +0+1");
  auto tree = toolkit_->BuildPanelTree(
      "bar", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  ASSERT_NE(tree, nullptr);
  Object* client = tree->FindDescendant("client");
  client->SetSizeOverride(xbase::Size{60, 10});
  tree->DoLayout();

  EXPECT_EQ(tree->geometry().width, 60);
  Object* lft = tree->FindDescendant("lft");
  Object* mid = tree->FindDescendant("mid");
  Object* rgt = tree->FindDescendant("rgt");
  EXPECT_EQ(lft->geometry().x, 0);
  EXPECT_EQ(rgt->geometry().Right(), 60);
  // Centered roughly in the middle.
  int mid_center = mid->geometry().x + mid->geometry().width / 2;
  EXPECT_NEAR(mid_center, 30, 2);
  // Client row sits below the title row.
  EXPECT_EQ(client->geometry().y, lft->geometry().height);
  EXPECT_EQ(tree->geometry().height, lft->geometry().height + 10);
}

TEST_F(ToolkitTest, ColumnsOrderWithinRow) {
  db_.Put("swm*panel.grid",
          "button a +0+0 button b +1+0 button c +2+0 button d +0+1 button e +1+1");
  auto tree = toolkit_->BuildPanelTree(
      "grid", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  tree->DoLayout();
  Object* a = tree->FindDescendant("a");
  Object* b = tree->FindDescendant("b");
  Object* c = tree->FindDescendant("c");
  Object* d = tree->FindDescendant("d");
  EXPECT_LT(a->geometry().x, b->geometry().x);
  EXPECT_LT(b->geometry().x, c->geometry().x);
  EXPECT_EQ(a->geometry().y, b->geometry().y);
  EXPECT_GT(d->geometry().y, a->geometry().y);
}

TEST_F(ToolkitTest, DynamicLabelAndImage) {
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "dyn");
  EXPECT_EQ(button->label(), "dyn");  // Defaults to the object name.
  button->SetLabel("busy");
  EXPECT_EQ(button->label(), "busy");
  EXPECT_FALSE(button->has_image());
  button->SetImage(xbase::XLogo32());
  EXPECT_TRUE(button->has_image());
  EXPECT_GT(button->PreferredSize().width, 32);
  button->ClearImage();
  EXPECT_FALSE(button->has_image());
}

TEST_F(ToolkitTest, DynamicRebinding) {
  db_.Put("swm*button.reb.bindings", "<Btn1> : f.raise");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "reb");
  ASSERT_EQ(button->bindings().size(), 1u);
  // "buttons can not only dynamically change appearance, but they can also
  // change functionality" (§4.2).
  button->SetBindings(xtb::ParseBindings("<Btn1> : f.lower\n<Btn2> : f.zoom").bindings);
  EXPECT_EQ(button->bindings().size(), 2u);
  EXPECT_EQ(button->bindings()[0].functions[0].name, "f.lower");
}

TEST_F(ToolkitTest, DispatchButtonPressToBinding) {
  db_.Put("swm*button.hot.bindings", "<Btn1> : f.raise f.save\nShift<Btn1> : f.lower");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "hot");
  button->SetGeometry({5, 5, 10, 3});
  button->Show();

  std::vector<std::string> calls;
  toolkit_->SetActionHandler(
      [&](const xtb::FunctionCall& fn, const ActionContext& context) {
        calls.push_back(fn.name);
        EXPECT_EQ(context.object, button.get());
      });

  server_.SimulateMotion({7, 6});
  server_.SimulateButton(1, true);
  server_.SimulateButton(1, false);
  dpy_.DrainEvents([&](const xproto::Event& event) { toolkit_->DispatchEvent(event); });
  EXPECT_EQ(calls, (std::vector<std::string>{"f.raise", "f.save"}));

  calls.clear();
  server_.SimulateButton(1, true, static_cast<uint32_t>(xproto::ModifierMask::kShift));
  server_.SimulateButton(1, false, static_cast<uint32_t>(xproto::ModifierMask::kShift));
  dpy_.DrainEvents([&](const xproto::Event& event) { toolkit_->DispatchEvent(event); });
  EXPECT_EQ(calls, (std::vector<std::string>{"f.lower"}));
}

TEST_F(ToolkitTest, DispatchKeyWithDetail) {
  db_.Put("swm*button.k.bindings", "<Key>Up : f.warpVertical(-50)");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "k");
  button->SetGeometry({0, 0, 8, 3});
  button->Show();
  std::vector<std::string> calls;
  toolkit_->SetActionHandler(
      [&](const xtb::FunctionCall& fn, const ActionContext&) {
        calls.push_back(fn.ToString());
      });
  server_.SimulateMotion({2, 1});
  server_.SimulateKey(xtb::InternKeySym("Up"), true);
  server_.SimulateKey(xtb::InternKeySym("Down"), true);  // Unbound.
  dpy_.DrainEvents([&](const xproto::Event& event) { toolkit_->DispatchEvent(event); });
  EXPECT_EQ(calls, (std::vector<std::string>{"f.warpVertical(-50)"}));
}

TEST_F(ToolkitTest, TreePrefixEnablesSpecificResources) {
  db_.Put("swm*panel.deco", "button name +C+0 panel client +0+1");
  db_.Put("swm*button.name.label", "generic");
  db_.Put("swm*XClock*button.name.label", "clock-title");
  auto generic = toolkit_->BuildPanelTree(
      "deco", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  auto specific = toolkit_->BuildPanelTree(
      "deco", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); },
      {"XClock", "xclock"}, {"XClock", "xclock"});
  EXPECT_EQ(static_cast<Button*>(generic->FindDescendant("name"))->label(), "generic");
  EXPECT_EQ(static_cast<Button*>(specific->FindDescendant("name"))->label(),
            "clock-title");
}

TEST_F(ToolkitTest, PanelShapeToChildren) {
  db_.Put("swm*panel.shapeit", "panel client +0+0");
  db_.Put("swm*panel.shapeit*shape", "True");
  auto tree = toolkit_->BuildPanelTree(
      "shapeit", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  Object* client = tree->FindDescendant("client");
  client->SetSizeOverride(xbase::Size{30, 20});
  tree->DoLayout();
  tree->ApplyShape();
  EXPECT_TRUE(server_.IsShaped(tree->window()));
  auto shape = server_.GetShape(tree->window());
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->Bounds(), client->geometry());
}

TEST_F(ToolkitTest, MenuLayoutAndPopup) {
  db_.Put("swm*button.itemA.label", "First");
  auto menu = toolkit_->CreateMenu(dpy_.RootWindow(0), "m");
  menu->AddItem("itemA", "");
  menu->AddItem("itemB", "Second");
  EXPECT_EQ(menu->items().size(), 2u);
  EXPECT_EQ(menu->items()[0]->label(), "First");   // From the resource db.
  EXPECT_EQ(menu->items()[1]->label(), "Second");  // Explicit.

  EXPECT_FALSE(menu->popped_up());
  menu->PopupAt({40, 20});
  EXPECT_TRUE(menu->popped_up());
  EXPECT_TRUE(server_.IsViewable(menu->window()));
  EXPECT_EQ(menu->geometry().origin(), (xbase::Point{40, 20}));
  // Items stack vertically.
  EXPECT_LT(menu->items()[0]->geometry().y, menu->items()[1]->geometry().y);
  menu->Popdown();
  EXPECT_FALSE(server_.IsViewable(menu->window()));
}

TEST_F(ToolkitTest, ObjectDestructionUnregisters) {
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "gone");
  xproto::WindowId window = button->window();
  EXPECT_EQ(toolkit_->FindObject(window), button.get());
  button.reset();
  EXPECT_EQ(toolkit_->FindObject(window), nullptr);
  EXPECT_FALSE(server_.WindowExists(window));
}

TEST_F(ToolkitTest, AttributeCacheInvalidatedByRuntimePut) {
  // The memoized attribute layer must never serve a value older than the
  // database: a Put bumps the generation and the next query re-walks.
  db_.Put("swm*button.live.label", "before");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "live");
  EXPECT_EQ(button->Attribute("label"), "before");
  EXPECT_EQ(button->Attribute("label"), "before");  // Cached probe.
  db_.Put("swm*button.live.label", "after");
  EXPECT_EQ(button->Attribute("label"), "after");
}

TEST_F(ToolkitTest, NegativeCacheInvalidatedByRuntimePut) {
  // Misses are memoized too; a Put that makes a previously-absent
  // attribute appear must be visible immediately.
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "late");
  EXPECT_FALSE(button->Attribute("tooltip").has_value());
  EXPECT_FALSE(button->Attribute("tooltip").has_value());  // Cached miss.
  db_.Put("swm*button.late.tooltip", "appeared");
  EXPECT_EQ(button->Attribute("tooltip"), "appeared");
}

TEST_F(ToolkitTest, AttributeCacheInvalidatedBySetTreePrefix) {
  // Installing a tree prefix changes every cached path under that root, so
  // stale pre-prefix answers must not survive.
  db_.Put("swm*button.name.label", "generic");
  db_.Put("swm*XTerm*button.name.label", "terminal");
  db_.Put("swm*panel.deco", "button name +C+0");
  auto tree = toolkit_->BuildPanelTree(
      "deco", dpy_.RootWindow(0),
      [this](const std::string& name) { return Definition(name); });
  Object* name = tree->FindDescendant("name");
  EXPECT_EQ(name->Attribute("label"), "generic");
  toolkit_->SetTreePrefix(tree.get(), {"XTerm", "xterm"}, {"XTerm", "xterm"});
  EXPECT_EQ(name->Attribute("label"), "terminal");
}

TEST_F(ToolkitTest, AttributeCacheInvalidatedBySetResources) {
  // Pointing the toolkit at a different database drops everything cached
  // from the old one, even though the object paths are unchanged.
  db_.Put("swm*button.swap.label", "old-db");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "swap");
  EXPECT_EQ(button->Attribute("label"), "old-db");
  xrdb::ResourceDatabase other;
  other.Put("swm*button.swap.label", "new-db");
  toolkit_->SetResources(&other);
  EXPECT_EQ(button->Attribute("label"), "new-db");
  toolkit_->SetResources(&db_);
  EXPECT_EQ(button->Attribute("label"), "old-db");
}

TEST_F(ToolkitTest, QueryStatsCountCacheHits) {
  db_.Put("swm*button.stat.label", "x");
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "stat");
  // Construction itself queried "label"; start from a cold cache so the
  // hit/lookup split below is deterministic.
  toolkit_->InvalidateQueryCaches();
  toolkit_->ResetQueryStats();
  button->Attribute("label");
  button->Attribute("label");
  button->Attribute("label");
  const Toolkit::QueryStats& stats = toolkit_->query_stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.trie_lookups, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST_F(ToolkitTest, ExposeTriggersRender) {
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "exp");
  button->SetGeometry({0, 0, 10, 3});
  dpy_.DrainEvents([](const xproto::Event&) {});
  button->Show();  // Generates Expose.
  int handled = 0;
  dpy_.DrainEvents([&](const xproto::Event& event) {
    if (toolkit_->DispatchEvent(event)) {
      ++handled;
    }
  });
  EXPECT_GT(handled, 0);
  // Expose damage is retained until the next frame flush.
  toolkit_->FlushFrame();
  // The render produced draw ops (border + label).
  EXPECT_FALSE(server_.FindWindowForTest(button->window())->draw_ops.empty());
}

}  // namespace
}  // namespace oi
