#include <gtest/gtest.h>

#include "src/xlib/client_app.h"
#include "src/xlib/display.h"
#include "src/xlib/icccm.h"
#include "src/xserver/server.h"

namespace xlib {
namespace {

class XlibTest : public ::testing::Test {
 protected:
  XlibTest() : server_({xserver::ScreenConfig{300, 200, false}}), dpy_(&server_, "hostX") {
    win_ = dpy_.CreateWindow(dpy_.RootWindow(0), {10, 10, 50, 40});
  }

  xserver::Server server_;
  Display dpy_;
  xproto::WindowId win_ = xproto::kNone;
};

TEST_F(XlibTest, ConnectionLifecycle) {
  EXPECT_TRUE(server_.HasClient(dpy_.client_id()));
  EXPECT_EQ(dpy_.client_machine(), "hostX");
  {
    Display temp(&server_, "temp");
    EXPECT_TRUE(server_.HasClient(temp.client_id()));
    xproto::ClientId id = temp.client_id();
    (void)id;
  }
  // Destructor disconnects.
  EXPECT_EQ(server_.ClientMachine(3), "");
}

TEST_F(XlibTest, TypedStringProperty) {
  EXPECT_TRUE(dpy_.SetStringProperty(win_, "MY_PROP", "value"));
  EXPECT_EQ(dpy_.GetStringProperty(win_, "MY_PROP"), "value");
  EXPECT_FALSE(dpy_.GetStringProperty(win_, "NO_SUCH").has_value());
  dpy_.AppendStringProperty(win_, "MY_PROP", "+more");
  EXPECT_EQ(dpy_.GetStringProperty(win_, "MY_PROP"), "value+more");
}

TEST_F(XlibTest, CardinalAndWindowProperties) {
  dpy_.SetCardinalProperty(win_, "NUMS", {1, 2, 70000});
  EXPECT_EQ(dpy_.GetCardinalProperty(win_, "NUMS"),
            (std::vector<uint32_t>{1, 2, 70000}));
  dpy_.SetWindowIdProperty(win_, "TARGET", win_);
  EXPECT_EQ(dpy_.GetWindowIdProperty(win_, "TARGET"), win_);
}

TEST_F(XlibTest, WmNameAndIconName) {
  SetWmName(&dpy_, win_, "my window");
  EXPECT_EQ(GetWmName(&dpy_, win_), "my window");
  SetWmIconName(&dpy_, win_, "mini");
  EXPECT_EQ(GetWmIconName(&dpy_, win_), "mini");
}

TEST_F(XlibTest, WmClassRoundTrip) {
  SetWmClass(&dpy_, win_, {"xclock", "XClock"});
  auto wm_class = GetWmClass(&dpy_, win_);
  ASSERT_TRUE(wm_class.has_value());
  EXPECT_EQ(wm_class->instance, "xclock");
  EXPECT_EQ(wm_class->clazz, "XClock");
}

TEST_F(XlibTest, WmCommandRoundTrip) {
  std::vector<std::string> argv{"oclock", "-geom", "100x100"};
  SetWmCommand(&dpy_, win_, argv);
  EXPECT_EQ(GetWmCommand(&dpy_, win_), argv);
}

TEST_F(XlibTest, WmClientMachine) {
  SetWmClientMachine(&dpy_, win_, "remotehost");
  EXPECT_EQ(GetWmClientMachine(&dpy_, win_), "remotehost");
}

TEST_F(XlibTest, NormalHintsRoundTrip) {
  xproto::SizeHints hints;
  hints.flags = xproto::kUSPosition | xproto::kPSize | xproto::kPMinSize;
  hints.x = -5;
  hints.y = 1200;
  hints.width = 300;
  hints.height = 200;
  hints.min_width = 50;
  hints.min_height = 40;
  SetWmNormalHints(&dpy_, win_, hints);
  auto read = GetWmNormalHints(&dpy_, win_);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, hints);
  EXPECT_TRUE(read->HasUserPosition());
  EXPECT_FALSE(read->HasProgramPosition());
}

TEST_F(XlibTest, WmHintsRoundTrip) {
  xproto::WmHints hints;
  hints.flags = xproto::kStateHint | xproto::kIconPositionHint | xproto::kIconPixmapHint;
  hints.initial_state = xproto::WmState::kIconic;
  hints.icon_position = {12, -3};
  hints.icon_pixmap_name = "xlogo";
  SetWmHints(&dpy_, win_, hints);
  auto read = GetWmHints(&dpy_, win_);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, hints);
}

TEST_F(XlibTest, WmStateRoundTrip) {
  SetWmState(&dpy_, win_, xproto::WmState::kIconic, 77);
  auto state = GetWmState(&dpy_, win_);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->state, xproto::WmState::kIconic);
  EXPECT_EQ(state->icon_window, 77u);
}

TEST_F(XlibTest, WmProtocolsRoundTrip) {
  SetWmProtocols(&dpy_, win_, {"WM_DELETE_WINDOW", "WM_TAKE_FOCUS"});
  auto protocols = GetWmProtocols(&dpy_, win_);
  ASSERT_TRUE(protocols.has_value());
  EXPECT_EQ(*protocols,
            (std::vector<std::string>{"WM_DELETE_WINDOW", "WM_TAKE_FOCUS"}));
}

TEST_F(XlibTest, SizeHintConstraints) {
  xproto::SizeHints hints;
  hints.flags = xproto::kPMinSize | xproto::kPMaxSize | xproto::kPResizeInc;
  hints.min_width = 20;
  hints.min_height = 10;
  hints.max_width = 100;
  hints.max_height = 60;
  hints.width_inc = 7;
  hints.height_inc = 5;
  EXPECT_EQ(hints.Constrain({5, 5}), (xbase::Size{20, 10}));
  EXPECT_EQ(hints.Constrain({500, 500}), (xbase::Size{97, 60}));
  // 50 = 20 + 4*7 + 2 -> snaps down to 48; 33 = 10 + 4*5 + 3 -> 30.
  EXPECT_EQ(hints.Constrain({50, 33}), (xbase::Size{48, 30}));
}

TEST_F(XlibTest, RequestIconifyReachesRedirectHolder) {
  Display wm(&server_, "wm");
  ASSERT_TRUE(wm.SelectInput(wm.RootWindow(0), xproto::kSubstructureRedirectMask));
  RequestIconify(&dpy_, win_, 0);
  auto event = wm.NextEvent();
  ASSERT_TRUE(event.has_value());
  auto* message = std::get_if<xproto::ClientMessageEvent>(&*event);
  ASSERT_NE(message, nullptr);
  EXPECT_EQ(message->window, win_);
  EXPECT_EQ(message->data[0], static_cast<uint32_t>(xproto::WmState::kIconic));
}

TEST_F(XlibTest, SyntheticConfigureNotify) {
  dpy_.SelectInput(win_, xproto::kStructureNotifyMask);
  Display wm(&server_, "wm");
  SendSyntheticConfigureNotify(&wm, win_, {500, 600, 50, 40});
  auto event = dpy_.NextEvent();
  ASSERT_TRUE(event.has_value());
  auto* configure = std::get_if<xproto::ConfigureNotifyEvent>(&*event);
  ASSERT_NE(configure, nullptr);
  EXPECT_TRUE(configure->synthetic);
  EXPECT_EQ(configure->geometry.origin(), (xbase::Point{500, 600}));
}

TEST_F(XlibTest, ClientAppSetsAllIcccmProperties) {
  ClientAppConfig config;
  config.name = "xterm";
  config.wm_class = {"xterm", "XTerm"};
  config.command = {"xterm", "-e", "vi"};
  config.machine = "farhost";
  config.geometry = {5, 6, 80, 25};
  config.initial_state = xproto::WmState::kIconic;
  config.icon_pixmap_name = "xlogo";
  ClientApp app(&server_, config);

  Display reader(&server_, "reader");
  EXPECT_EQ(GetWmName(&reader, app.window()), "xterm");
  EXPECT_EQ(GetWmClass(&reader, app.window())->clazz, "XTerm");
  EXPECT_EQ(GetWmCommand(&reader, app.window()),
            (std::vector<std::string>{"xterm", "-e", "vi"}));
  EXPECT_EQ(GetWmClientMachine(&reader, app.window()), "farhost");
  EXPECT_EQ(GetWmHints(&reader, app.window())->initial_state, xproto::WmState::kIconic);
  EXPECT_EQ(GetWmNormalHints(&reader, app.window())->width, 80);
}

TEST_F(XlibTest, ShapedClientAppIsShaped) {
  ClientAppConfig config;
  config.name = "oclock";
  config.wm_class = {"oclock", "Clock"};
  config.geometry = {0, 0, 30, 30};
  config.shaped = true;
  ClientApp app(&server_, config);
  EXPECT_TRUE(server_.IsShaped(app.window()));
}

TEST_F(XlibTest, ClientAppTracksSyntheticConfigure) {
  ClientApp app(&server_, ClientAppConfig{});
  app.Map();
  Display wm(&server_, "wm");
  SendSyntheticConfigureNotify(&wm, app.window(), {321, 123, 100, 100});
  app.ProcessEvents();
  EXPECT_EQ(app.believed_root_position(), (xbase::Point{321, 123}));
}

TEST_F(XlibTest, ClientAppSeesDeleteWindow) {
  ClientApp app(&server_, ClientAppConfig{});
  SetWmProtocols(&app.display(), app.window(), {"WM_DELETE_WINDOW"});
  Display wm(&server_, "wm");
  SendDeleteWindow(&wm, app.window());
  app.ProcessEvents();
  EXPECT_TRUE(app.saw_delete_window());
}

TEST_F(XlibTest, EffectiveRootForPopupsPrefersSwmRoot) {
  ClientApp app(&server_, ClientAppConfig{});
  EXPECT_EQ(app.EffectiveRootForPopups(), dpy_.RootWindow(0));
  Display wm(&server_, "wm");
  xproto::WindowId vroot = wm.CreateWindow(wm.RootWindow(0), {0, 0, 200, 200});
  wm.SetWindowIdProperty(app.window(), xproto::kAtomSwmRoot, vroot);
  EXPECT_EQ(app.EffectiveRootForPopups(), vroot);
}

}  // namespace
}  // namespace xlib
