// Per-client quarantine (docs/ROBUSTNESS.md "Input hardening and
// quarantine"): a flooding client drains its token bucket and is
// quarantined — its requests coalesced/dropped, its decoration kept — then
// paroled after a quiet period, while well-behaved neighbors keep their
// full event service.
#include <gtest/gtest.h>

#include <string>

#include "src/base/logging.h"
#include "src/swm/quarantine.h"
#include "src/xlib/icccm.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::MisbehaviorLedger;
using swm::QuarantinePolicy;

// ---- Ledger unit tests -----------------------------------------------------

TEST(MisbehaviorLedgerTest, StaysFreeWithinBudget) {
  MisbehaviorLedger ledger;
  for (int i = 0; i < ledger.policy().budget; ++i) {
    EXPECT_FALSE(ledger.Charge(7, 1));
  }
  EXPECT_FALSE(ledger.IsQuarantined(7));
  EXPECT_EQ(ledger.quarantined_count(), 0u);
}

TEST(MisbehaviorLedgerTest, ExhaustedBucketQuarantines) {
  MisbehaviorLedger ledger;
  bool tripped = false;
  for (int i = 0; i < ledger.policy().budget + 1; ++i) {
    tripped = ledger.Charge(7, 1);
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(ledger.IsQuarantined(7));
  EXPECT_EQ(ledger.quarantines_started(), 1u);
  EXPECT_EQ(ledger.quarantined_count(), 1u);
  // Other windows are unaffected.
  EXPECT_FALSE(ledger.IsQuarantined(8));
}

TEST(MisbehaviorLedgerTest, ErrorCostDrainsFaster) {
  MisbehaviorLedger ledger;
  const QuarantinePolicy& policy = ledger.policy();
  int errors_to_trip = policy.budget / policy.error_cost + 1;
  bool tripped = false;
  for (int i = 0; i < errors_to_trip; ++i) {
    tripped = ledger.Charge(9, policy.error_cost);
  }
  EXPECT_TRUE(tripped);
}

TEST(MisbehaviorLedgerTest, ParoleAfterQuietTicks) {
  MisbehaviorLedger ledger;
  while (!ledger.Charge(7, 1)) {
  }
  ASSERT_TRUE(ledger.IsQuarantined(7));
  std::vector<xproto::WindowId> paroled;
  int ticks = 0;
  while (paroled.empty() && ticks < 10) {
    paroled = ledger.Tick();
    ++ticks;
  }
  // The tripping charge dirties the first tick, so parole lands one tick
  // after `parole_ticks` consecutive quiet ones.
  EXPECT_EQ(ticks, ledger.policy().parole_ticks + 1);
  ASSERT_EQ(paroled.size(), 1u);
  EXPECT_EQ(paroled[0], 7u);
  EXPECT_FALSE(ledger.IsQuarantined(7));
}

TEST(MisbehaviorLedgerTest, ChargesDuringQuarantineDelayParole) {
  MisbehaviorLedger ledger;
  while (!ledger.Charge(7, 1)) {
  }
  // Keep misbehaving through what would have been the parole window.
  for (int i = 0; i < ledger.policy().parole_ticks + 2; ++i) {
    EXPECT_TRUE(ledger.Charge(7, 1));
    EXPECT_TRUE(ledger.Tick().empty());
  }
  EXPECT_TRUE(ledger.IsQuarantined(7));
  // Now go quiet: parole arrives on schedule.
  std::vector<xproto::WindowId> paroled;
  for (int i = 0; i < ledger.policy().parole_ticks; ++i) {
    paroled = ledger.Tick();
  }
  EXPECT_EQ(paroled.size(), 1u);
}

TEST(MisbehaviorLedgerTest, ForgetDropsState) {
  MisbehaviorLedger ledger;
  while (!ledger.Charge(7, 1)) {
  }
  ledger.Forget(7);
  EXPECT_FALSE(ledger.IsQuarantined(7));
  EXPECT_EQ(ledger.quarantined_count(), 0u);
}

TEST(MisbehaviorLedgerTest, RefillForgivesOldSins) {
  MisbehaviorLedger ledger;
  const QuarantinePolicy& policy = ledger.policy();
  // Misbehave at just under the refill rate forever: never quarantined.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < policy.refill_per_tick; ++i) {
      EXPECT_FALSE(ledger.Charge(7, 1));
    }
    ledger.Tick();
  }
  EXPECT_FALSE(ledger.IsQuarantined(7));
}

// ---- WM integration --------------------------------------------------------

class QuarantineWmTest : public SwmTest {
 protected:
  void SetUp() override {
    previous_severity_ = xbase::MinLogSeverity();
    xbase::SetMinLogSeverity(xbase::LogSeverity::kError);
    xbase::ResetLogThrottle();
  }
  void TearDown() override { xbase::SetMinLogSeverity(previous_severity_); }

  xbase::LogSeverity previous_severity_ = xbase::LogSeverity::kInfo;
};

TEST_F(QuarantineWmTest, ConfigureFloodQuarantinesAndParoles) {
  StartWm();
  auto app = Spawn("flood", {"flood", "Flood"});
  swm::ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);

  // Flood: far more ConfigureRequests in one batch than the budget allows.
  int flood = wm_->ledger().policy().budget + 60;
  for (int i = 0; i < flood; ++i) {
    app->RequestMoveResize({i % 40, i % 20, 30 + i % 8, 10 + i % 4});
  }
  app->RequestMoveResize({60, 40, 50, 25});  // The request that should win.
  wm_->ProcessEvents();

  EXPECT_TRUE(wm_->IsQuarantined(app->window()));
  EXPECT_GT(wm_->ledger().dropped(), 0u);
  EXPECT_EQ(wm_->ledger().quarantines_started(), 1u);
  // Decoration survives quarantine.
  client = Managed(*app);
  ASSERT_NE(client, nullptr);
  EXPECT_NE(client->frame, nullptr);
  EXPECT_TRUE(server_->IsViewable(app->window()));

  // Quiet batches: parole, then the coalesced final configure is applied.
  for (int i = 0; i < wm_->ledger().policy().parole_ticks + 1; ++i) {
    wm_->ProcessEvents();
  }
  EXPECT_FALSE(wm_->IsQuarantined(app->window()));
  std::optional<xbase::Rect> geometry = app->display().GetGeometry(app->window());
  ASSERT_TRUE(geometry.has_value());
  EXPECT_EQ(geometry->width, 50);
  EXPECT_EQ(geometry->height, 25);
}

TEST_F(QuarantineWmTest, PropertyStormQuarantines) {
  StartWm();
  auto app = Spawn("chatty", {"chatty", "Chatty"});
  int storm = wm_->ledger().policy().budget + 40;
  for (int i = 0; i < storm; ++i) {
    xlib::SetWmName(&app->display(), app->window(), "name-" + std::to_string(i));
  }
  wm_->ProcessEvents();
  EXPECT_TRUE(wm_->IsQuarantined(app->window()));

  // During quarantine property re-reads are skipped...
  std::string stale = Managed(*app)->name;
  xlib::SetWmName(&app->display(), app->window(), "ignored-mid-quarantine");
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app)->name, stale);

  // ...and replayed at parole, so the WM converges on the latest value.
  xlib::SetWmName(&app->display(), app->window(), "final-name");
  for (int i = 0; i < wm_->ledger().policy().parole_ticks + 2; ++i) {
    wm_->ProcessEvents();
  }
  EXPECT_FALSE(wm_->IsQuarantined(app->window()));
  EXPECT_EQ(Managed(*app)->name, "final-name");
}

TEST_F(QuarantineWmTest, UnmanageForgetsLedgerState) {
  StartWm();
  auto app = Spawn("brief", {"brief", "Brief"});
  int flood = wm_->ledger().policy().budget + 20;
  for (int i = 0; i < flood; ++i) {
    app->RequestMoveResize({1, 1, 30, 10});
  }
  wm_->ProcessEvents();
  ASSERT_TRUE(wm_->IsQuarantined(app->window()));

  app->display().DestroyWindow(app->window());
  wm_->ProcessEvents();
  EXPECT_FALSE(wm_->IsQuarantined(app->window()));
  EXPECT_EQ(wm_->ledger().quarantined_count(), 0u);
}

// The acceptance fairness bar: with one client flooding, a well-behaved
// client's dispatched-event count stays within 10% of the no-flood baseline.
class QuarantineFairnessTest : public QuarantineWmTest {
 protected:
  uint64_t RunWorkload(bool with_flooder) {
    // Tear the previous run down in dependency order: the WM must go before
    // StartWm replaces the server it points at.
    wm_.reset();
    server_.reset();
    StartWm();
    auto good = Spawn("good", {"good", "Good"});
    std::unique_ptr<xlib::ClientApp> flooder;
    if (with_flooder) {
      flooder = Spawn("flood", {"flood", "Flood"});
    }
    for (int round = 0; round < 8; ++round) {
      good->RequestMoveResize({10 + round, 10, 40 + round, 20});
      xlib::SetWmName(&good->display(), good->window(),
                      "good-" + std::to_string(round));
      if (flooder != nullptr) {
        for (int i = 0; i < 200; ++i) {
          flooder->RequestMoveResize({i % 50, i % 30, 30 + i % 10, 10 + i % 5});
        }
        xlib::SetWmName(&flooder->display(), flooder->window(),
                        "flood-" + std::to_string(round));
      }
      wm_->ProcessEvents();
      good->ProcessEvents();
      if (flooder != nullptr) {
        flooder->ProcessEvents();
      }
    }
    uint64_t dispatched = wm_->events_dispatched_for(good->window());
    if (with_flooder) {
      EXPECT_TRUE(wm_->IsQuarantined(flooder->window()));
      EXPECT_GT(wm_->ledger().dropped(), 0u);
    }
    return dispatched;
  }
};

TEST_F(QuarantineFairnessTest, FloodingNeighborDoesNotStarveGoodClient) {
  uint64_t baseline = RunWorkload(/*with_flooder=*/false);
  uint64_t with_flood = RunWorkload(/*with_flooder=*/true);
  ASSERT_GT(baseline, 0u);
  uint64_t difference =
      baseline > with_flood ? baseline - with_flood : with_flood - baseline;
  EXPECT_LE(difference * 10, baseline)
      << "baseline=" << baseline << " with_flood=" << with_flood;
}

}  // namespace
}  // namespace swm_test
