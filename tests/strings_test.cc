#include "src/base/strings.h"

#include <gtest/gtest.h>

namespace xbase {
namespace {

TEST(TrimTest, Basic) {
  EXPECT_EQ(TrimWhitespace("  hello  "), "hello");
  EXPECT_EQ(TrimWhitespace("\t\na b\r\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a.b..c", '.'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", '.'), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, DropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("f.raise", "f."));
  EXPECT_FALSE(StartsWith("raise", "f."));
  EXPECT_TRUE(EndsWith("panel.client", "client"));
  EXPECT_FALSE(EndsWith("cli", "client"));
}

TEST(ParseIntTest, Basic) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-50"), -50);
  EXPECT_EQ(ParseInt("+7"), 7);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("-").has_value());
  EXPECT_FALSE(ParseInt("12a").has_value());
  EXPECT_FALSE(ParseInt("99999999999").has_value());
}

TEST(ParseHexTest, Basic) {
  EXPECT_EQ(ParseHex("0x1234"), 0x1234u);
  EXPECT_EQ(ParseHex("ff"), 0xffu);
  EXPECT_EQ(ParseHex("0XAB"), 0xabu);
  EXPECT_FALSE(ParseHex("").has_value());
  EXPECT_FALSE(ParseHex("0x").has_value());
  EXPECT_FALSE(ParseHex("xyz").has_value());
}

TEST(ShellSplitTest, PlainWords) {
  EXPECT_EQ(ShellSplit("oclock -geom 100x100"),
            (std::vector<std::string>{"oclock", "-geom", "100x100"}));
}

TEST(ShellSplitTest, Quotes) {
  EXPECT_EQ(ShellSplit("swmhints -cmd \"oclock -geom 100x100\""),
            (std::vector<std::string>{"swmhints", "-cmd", "oclock -geom 100x100"}));
}

TEST(ShellSplitTest, EscapesAndEmptyArg) {
  EXPECT_EQ(ShellSplit("a\\ b c"), (std::vector<std::string>{"a b", "c"}));
  EXPECT_EQ(ShellSplit("x \"\" y"), (std::vector<std::string>{"x", "", "y"}));
  EXPECT_EQ(ShellSplit("say \\\"hi\\\""), (std::vector<std::string>{"say", "\"hi\""}));
}

TEST(ShellJoinTest, QuotesWhenNeeded) {
  EXPECT_EQ(ShellJoin({"oclock", "-geom", "100x100"}), "oclock -geom 100x100");
  EXPECT_EQ(ShellJoin({"a b"}), "\"a b\"");
  EXPECT_EQ(ShellJoin({""}), "\"\"");
}

class ShellRoundTrip : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(ShellRoundTrip, SplitJoinIdentity) {
  const std::vector<std::string>& argv = GetParam();
  EXPECT_EQ(ShellSplit(ShellJoin(argv)), argv);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShellRoundTrip,
    ::testing::Values(std::vector<std::string>{"xclock"},
                      std::vector<std::string>{"xterm", "-e", "vi my file.txt"},
                      std::vector<std::string>{"cmd", "with \"nested\" quotes"},
                      std::vector<std::string>{"back\\slash", "tab\targ"},
                      std::vector<std::string>{"", "empty", ""}));

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(ToLowerTest, Basic) { EXPECT_EQ(ToLowerAscii("BtN1Up"), "btn1up"); }

}  // namespace
}  // namespace xbase
