// Differential property tests for xbase::Region against a brute-force
// bitmap oracle: every operation is replayed per-pixel on a boolean grid
// and the region must agree cell for cell, while also staying in canonical
// y-x banded form (sorted, disjoint, horizontally merged, vertically
// coalesced).  Canonical form is what makes operator== structural, so the
// tests also assert that differently-constructed regions with the same
// coverage compare equal.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <random>
#include <vector>

#include "src/base/region.h"

namespace xbase {
namespace {

// Oracle universe: [kMin, kMin + kSpan) in both axes.  Generated rects stay
// well inside so translations cannot escape.
constexpr int kMin = -12;
constexpr int kSpan = 64;

class Grid {
 public:
  Grid() = default;
  static bool InUniverse(int x, int y) {
    return x >= kMin && y >= kMin && x < kMin + kSpan && y < kMin + kSpan;
  }
  bool Get(int x, int y) const { return InUniverse(x, y) && bits_[Index(x, y)]; }
  void Set(int x, int y) {
    ASSERT_TRUE(InUniverse(x, y)) << "cell (" << x << "," << y << ") escaped the universe";
    bits_[Index(x, y)] = true;
  }

  void AddRect(const Rect& r) {
    for (int y = r.y; y < r.Bottom(); ++y) {
      for (int x = r.x; x < r.Right(); ++x) {
        Set(x, y);
        if (::testing::Test::HasFatalFailure()) {
          return;
        }
      }
    }
  }

  size_t Count() const { return bits_.count(); }

  Grid Union(const Grid& o) const { return Grid(bits_ | o.bits_); }
  Grid Intersect(const Grid& o) const { return Grid(bits_ & o.bits_); }
  Grid Subtract(const Grid& o) const { return Grid(bits_ & ~o.bits_); }

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  explicit Grid(std::bitset<kSpan * kSpan> bits) : bits_(bits) {}
  static size_t Index(int x, int y) {
    return static_cast<size_t>(y - kMin) * kSpan + static_cast<size_t>(x - kMin);
  }
  std::bitset<kSpan * kSpan> bits_;
};

Grid FromRects(const std::vector<Rect>& rects) {
  Grid g;
  for (const Rect& r : rects) {
    g.AddRect(r);
  }
  return g;
}

Grid FromRegion(const Region& region) { return FromRects(region.rects()); }

// Structural canonical-form invariants (see region.h).
void CheckCanonical(const Region& region) {
  const std::vector<Rect>& rects = region.rects();
  for (const Rect& r : rects) {
    ASSERT_GT(r.width, 0) << region.ToString();
    ASSERT_GT(r.height, 0) << region.ToString();
  }
  // Band structure: rects sorted by (y, x); within a band equal y/height and
  // a horizontal gap between neighbors; across bands vertical disjointness.
  for (size_t i = 1; i < rects.size(); ++i) {
    const Rect& prev = rects[i - 1];
    const Rect& cur = rects[i];
    if (cur.y == prev.y) {
      ASSERT_EQ(cur.height, prev.height) << region.ToString();
      ASSERT_GT(cur.x, prev.Right()) << "unmerged neighbors: " << region.ToString();
    } else {
      ASSERT_GE(cur.y, prev.Bottom()) << region.ToString();
    }
  }
  // Coalescing: vertically adjacent bands must not have identical x spans.
  for (size_t band = 0; band < rects.size();) {
    size_t band_end = band;
    while (band_end < rects.size() && rects[band_end].y == rects[band].y) {
      ++band_end;
    }
    if (band_end < rects.size() && rects[band_end].y == rects[band].Bottom() &&
        band_end - band == [&] {
          size_t next_end = band_end;
          while (next_end < rects.size() && rects[next_end].y == rects[band_end].y) {
            ++next_end;
          }
          return next_end - band_end;
        }()) {
      bool identical = true;
      for (size_t i = 0; band + i < band_end; ++i) {
        if (rects[band + i].x != rects[band_end + i].x ||
            rects[band + i].width != rects[band_end + i].width) {
          identical = false;
          break;
        }
      }
      ASSERT_FALSE(identical) << "uncoalesced bands: " << region.ToString();
    }
    band = band_end;
  }
}

// Full agreement between a region and its oracle grid.
void CheckAgainstOracle(const Region& region, const Grid& oracle) {
  CheckCanonical(region);
  ASSERT_EQ(FromRegion(region), oracle) << region.ToString();
  ASSERT_EQ(static_cast<size_t>(region.Area()), oracle.Count());
  // Bounds must be the tight bounding box.
  Rect bounds = region.Bounds();
  if (region.IsEmpty()) {
    ASSERT_TRUE(bounds.IsEmpty());
  } else {
    int min_x = kMin + kSpan, min_y = kMin + kSpan, max_x = kMin, max_y = kMin;
    for (int y = kMin; y < kMin + kSpan; ++y) {
      for (int x = kMin; x < kMin + kSpan; ++x) {
        if (oracle.Get(x, y)) {
          min_x = std::min(min_x, x);
          min_y = std::min(min_y, y);
          max_x = std::max(max_x, x + 1);
          max_y = std::max(max_y, y + 1);
        }
      }
    }
    ASSERT_EQ(bounds, (Rect{min_x, min_y, max_x - min_x, max_y - min_y}));
  }
}

std::vector<Rect> RandomRects(std::mt19937_64& rng, int max_count) {
  int count = static_cast<int>(rng() % static_cast<uint64_t>(max_count + 1));
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Sizes occasionally zero: empty rects must canonicalize away.  The
    // 6-cell margin keeps ±4 translations inside the oracle universe.
    rects.push_back(Rect{kMin + 6 + static_cast<int>(rng() % 36),
                         kMin + 6 + static_cast<int>(rng() % 36),
                         static_cast<int>(rng() % 13), static_cast<int>(rng() % 13)});
  }
  return rects;
}

TEST(RegionPropertyTest, ConstructionCanonicalizesAnyRectSoup) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(0xbeef0000 + seed);
    std::vector<Rect> rects = RandomRects(rng, 8);
    Region region(rects);
    CheckAgainstOracle(region, FromRects(rects));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Equal coverage implies structural equality, regardless of how the
// coverage was described: shuffled input, rects split in half, overlaps.
TEST(RegionPropertyTest, EqualCoverageComparesEqual) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(0xcafe0000 + seed);
    std::vector<Rect> rects = RandomRects(rng, 6);
    Region original(rects);

    std::vector<Rect> mangled;
    for (const Rect& r : rects) {
      if (r.width > 1 && rng() % 2 == 0) {
        int cut = 1 + static_cast<int>(rng() % static_cast<uint64_t>(r.width - 1));
        mangled.push_back(Rect{r.x, r.y, cut, r.height});
        mangled.push_back(Rect{r.x + cut, r.y, r.width - cut, r.height});
      } else if (r.height > 1 && rng() % 2 == 0) {
        int cut = 1 + static_cast<int>(rng() % static_cast<uint64_t>(r.height - 1));
        mangled.push_back(Rect{r.x, r.y, r.width, cut});
        mangled.push_back(Rect{r.x, r.y + cut, r.width, r.height - cut});
      } else {
        mangled.push_back(r);  // Duplicates below create overlaps.
        mangled.push_back(r);
      }
    }
    std::shuffle(mangled.begin(), mangled.end(), rng);
    ASSERT_EQ(original, Region(mangled)) << original.ToString();
  }
}

TEST(RegionPropertyTest, BinaryOpsMatchBitmapOracle) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(0xab5e0000 + seed);
    std::vector<Rect> rects_a = RandomRects(rng, 7);
    std::vector<Rect> rects_b = RandomRects(rng, 7);
    Region a(rects_a);
    Region b(rects_b);
    Grid ga = FromRects(rects_a);
    Grid gb = FromRects(rects_b);

    CheckAgainstOracle(a.Union(b), ga.Union(gb));
    CheckAgainstOracle(a.Intersect(b), ga.Intersect(gb));
    CheckAgainstOracle(a.Subtract(b), ga.Subtract(gb));
    CheckAgainstOracle(b.Subtract(a), gb.Subtract(ga));

    // In-place forms must agree with the functional ones.
    Region in_place = a;
    in_place.UnionWith(b);
    ASSERT_EQ(in_place, a.Union(b));
    in_place = a;
    in_place.IntersectWith(b);
    ASSERT_EQ(in_place, a.Intersect(b));
    in_place = a;
    in_place.SubtractWith(b);
    ASSERT_EQ(in_place, a.Subtract(b));

    // Translation: move the oracle cells along with the rects.
    int dx = static_cast<int>(rng() % 9) - 4;
    int dy = static_cast<int>(rng() % 9) - 4;
    std::vector<Rect> moved = rects_a;
    for (Rect& r : moved) {
      r = r.Translated(dx, dy);
    }
    CheckAgainstOracle(a.Translated(dx, dy), FromRects(moved));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(RegionPropertyTest, IncrementalUnionRectMatchesBatchConstruction) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(0x50da0000 + seed);
    std::vector<Rect> rects = RandomRects(rng, 10);
    Region incremental;
    for (const Rect& r : rects) {
      incremental.UnionRect(r);
    }
    ASSERT_EQ(incremental, Region(rects)) << incremental.ToString();
    CheckCanonical(incremental);

    // IntersectRect against the oracle too.
    Rect window{kMin + static_cast<int>(rng() % 20), kMin + static_cast<int>(rng() % 20),
                static_cast<int>(rng() % 30), static_cast<int>(rng() % 30)};
    Region clipped = incremental;
    clipped.IntersectRect(window);
    Grid window_grid;
    {
      std::vector<Rect> one{window};
      window_grid = FromRects(one);
    }
    CheckAgainstOracle(clipped, FromRects(rects).Intersect(window_grid));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(RegionPropertyTest, QueriesMatchBitmapOracle) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(0x9e770000 + seed);
    std::vector<Rect> rects_a = RandomRects(rng, 6);
    std::vector<Rect> rects_b = RandomRects(rng, 6);
    Region a(rects_a);
    Region b(rects_b);
    Grid ga = FromRects(rects_a);
    Grid gb = FromRects(rects_b);

    for (int probe = 0; probe < 30; ++probe) {
      Point p{kMin + static_cast<int>(rng() % kSpan), kMin + static_cast<int>(rng() % kSpan)};
      ASSERT_EQ(a.Contains(p), ga.Get(p.x, p.y)) << "point " << p.x << "," << p.y;
    }
    for (int probe = 0; probe < 20; ++probe) {
      Rect r{kMin + 2 + static_cast<int>(rng() % 40), kMin + 2 + static_cast<int>(rng() % 40),
             1 + static_cast<int>(rng() % 8), 1 + static_cast<int>(rng() % 8)};
      Grid gr;
      gr.AddRect(r);
      ASSERT_EQ(a.ContainsRect(r), gr.Subtract(ga).Count() == 0)
          << "rect " << r.x << "," << r.y << " " << r.width << "x" << r.height;
      ASSERT_EQ(a.IntersectsRect(r), ga.Intersect(gr).Count() > 0);
    }
    ASSERT_EQ(a.Intersects(b), ga.Intersect(gb).Count() > 0);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace xbase
