// The layout-policy refactor's no-op gate (docs/POLICIES.md): with the
// default `floating` policy, the refactored WM must be *byte-identical* to
// the pre-refactor code.  Three anchors:
//
//  1. A deterministic scripted WM session whose ServerFingerprint was
//     recorded on the pre-refactor tree (the golden constants below).  Any
//     drift in placement, sizing, stacking, decoration traffic or paint
//     output changes the fingerprint and fails the gate.
//  2. The same session run with `swm.layout.policy: floating` set explicitly
//     must match a run with no policy resource at all (default == floating,
//     forever, not just against this PR's golden).
//  3. The checked-in trace corpus (duplex_seed_* / chaos_seed_*) still
//     replays deterministically — the refactor may not perturb the server
//     side either.
//
// Regenerating the golden after an *intentional* behavior change: run with
// --gtest_also_run_disabled_tests --gtest_filter='*PrintFingerprint*' and
// paste the printed values.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/swm/swmcmd.h"
#include "src/xproto/trace.h"
#include "src/xserver/replay.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using xserver::FingerprintServer;
using xserver::ReplayResult;
using xserver::ReplayTrace;
using xserver::Server;
using xserver::ServerFingerprint;

// Pre-refactor fingerprint of RunScriptedWmSession, recorded at commit
// 70078b5 (before LayoutPolicy existed).  The floating policy must keep
// reproducing it exactly.
constexpr uint64_t kGoldenTotalRequests = 680;
constexpr uint64_t kGoldenDrawOps = 152;
constexpr int64_t kGoldenPixelsDrawn = 2387;
constexpr uint64_t kGoldenScreenHash = 4979895773632615327ull;
constexpr uint64_t kGoldenRepliesEmitted = 0;
constexpr uint64_t kGoldenReplyBytes = 0;
constexpr uint64_t kGoldenReplyHash = 1469598103934665603ull;

class PolicyNoopTest : public SwmTest {
 protected:
  // A fixed workload covering every layout decision site: default cascade
  // placement, PPosition/USPosition honoring, ConfigureRequest move+resize,
  // iconify/deiconify, zoom, raise via swmcmd, a viewport pan, withdrawal
  // and destruction.  No faults, no randomness: the resulting server state
  // is a pure function of the WM's layout policy.
  ServerFingerprint RunScriptedWmSession(const std::string& extra_resources) {
    StartWm("swm*virtualDesktop: 400x300\n" + extra_resources);

    auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
    auto b = Spawn("beta", {"beta", "Beta"}, {50, 40, 40, 20},
                   xproto::kPPosition | xproto::kPSize);
    auto c = Spawn("gamma", {"gamma", "Gamma"}, {5, 5, 20, 10},
                   xproto::kUSPosition | xproto::kUSSize);
    auto d = Spawn("delta", {"delta", "Delta"}, {0, 0, 24, 12});

    a->RequestMoveResize({60, 10, 35, 12});
    wm_->ProcessEvents();
    a->ProcessEvents();

    b->RequestIconify();
    wm_->ProcessEvents();
    b->Map();  // Deiconify via MapRequest.
    wm_->ProcessEvents();

    xlib::Display shell(server_.get(), "noop-shell");
    swm::SendSwmCommand(&shell, 0, "f.raise(Alpha)");
    wm_->ProcessEvents();
    swm::SendSwmCommand(&shell, 0, "f.zoom(Gamma)");
    wm_->ProcessEvents();
    swm::SendSwmCommand(&shell, 0, "f.lower(Delta)");
    wm_->ProcessEvents();

    auto e = Spawn("epsilon", {"epsilon", "Epsilon"}, {0, 0, 26, 14});

    // Withdrawal and destruction exercise the unmanage path.
    c->Unmap();
    wm_->ProcessEvents();
    d->display().DestroyWindow(d->window());
    wm_->ProcessEvents();

    // Pan last: the post-refactor floating policy resets its cascade cursor
    // on pan (a deliberate fix), so no placements follow the pan here.
    swm::SendSwmCommand(&shell, 0, "f.pan(30,20)");
    wm_->ProcessEvents();

    return FingerprintServer(*server_);
  }
};

TEST_F(PolicyNoopTest, FloatingMatchesPreRefactorGolden) {
  ServerFingerprint fp = RunScriptedWmSession("");
  EXPECT_EQ(fp.total_requests, kGoldenTotalRequests);
  EXPECT_EQ(fp.draw_ops, kGoldenDrawOps);
  EXPECT_EQ(fp.pixels_drawn, kGoldenPixelsDrawn);
  EXPECT_EQ(fp.screen_hash, kGoldenScreenHash);
  EXPECT_EQ(fp.replies_emitted, kGoldenRepliesEmitted);
  EXPECT_EQ(fp.reply_bytes, kGoldenReplyBytes);
  EXPECT_EQ(fp.reply_hash, kGoldenReplyHash);
  EXPECT_EQ(fp.wire_parse_errors, 0u);
}

TEST_F(PolicyNoopTest, DISABLED_PrintFingerprintForGoldenCapture) {
  ServerFingerprint fp = RunScriptedWmSession("");
  printf("kGoldenTotalRequests  = %llu\n",
         static_cast<unsigned long long>(fp.total_requests));
  printf("kGoldenDrawOps        = %llu\n",
         static_cast<unsigned long long>(fp.draw_ops));
  printf("kGoldenPixelsDrawn    = %lld\n",
         static_cast<long long>(fp.pixels_drawn));
  printf("kGoldenScreenHash     = %lluull\n",
         static_cast<unsigned long long>(fp.screen_hash));
  printf("kGoldenRepliesEmitted = %llu\n",
         static_cast<unsigned long long>(fp.replies_emitted));
  printf("kGoldenReplyBytes     = %llu\n",
         static_cast<unsigned long long>(fp.reply_bytes));
  printf("kGoldenReplyHash      = %lluull\n",
         static_cast<unsigned long long>(fp.reply_hash));
}

// ---- Checked-in corpus still replays deterministically ----------------------

class PolicyCorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyCorpusTest, CorpusUnchangedByPolicyRefactor) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::string path = std::string(SWM_TRACE_DIR) + "/" + GetParam();
  xproto::ParseError error;
  std::optional<xproto::Trace> trace = xproto::ReadTraceFile(path, &error);
  ASSERT_TRUE(trace.has_value()) << path << ": " << xproto::ParseErrorText(error);

  Server replay1;
  ReplayResult r1 = ReplayTrace(&replay1, *trace);
  Server replay2;
  ReplayResult r2 = ReplayTrace(&replay2, *trace);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);

  // The expect footer in each corpus trace *is* the pre-refactor recording:
  // request totals, draw ops and pixels drawn at record time.  Meeting it
  // proves the replayed server state is byte-identical to what the
  // pre-refactor tree produced.
  EXPECT_GT(r1.expectations_checked, 0u);
  EXPECT_TRUE(r1.expectations_met) << r1.mismatch;
  EXPECT_TRUE(r2.expectations_met) << r2.mismatch;
  EXPECT_EQ(FingerprintServer(replay1), FingerprintServer(replay2));
}

INSTANTIATE_TEST_SUITE_P(CheckedInTraces, PolicyCorpusTest,
                         ::testing::Values("chaos_seed_1.swmtrace",
                                           "chaos_seed_2.swmtrace",
                                           "chaos_seed_3.swmtrace",
                                           "chaos_seed_4.swmtrace",
                                           "duplex_seed_1.swmtrace",
                                           "duplex_seed_2.swmtrace",
                                           "duplex_seed_3.swmtrace",
                                           "duplex_seed_4.swmtrace"));

}  // namespace
}  // namespace swm_test
