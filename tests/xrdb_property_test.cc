// Differential property test: the trie-based Xrm matcher vs a brute-force
// reference that enumerates every alignment of every entry and picks the
// lexicographically best by the precedence rules.  Random databases and
// queries; any divergence is a matcher bug.
#include <gtest/gtest.h>

#include <random>
#include <span>

#include "src/base/interner.h"
#include "src/xrdb/database.h"

namespace xrdb {
namespace {

// Per-level cost of one alignment step, ordered by precedence (lower wins):
// name-tight, name-loose, class-tight, class-loose, ?-tight, ?-loose, skip.
enum : int {
  kNameTight = 0,
  kNameLoose = 1,
  kClassTight = 2,
  kClassLoose = 3,
  kQTight = 4,
  kQLoose = 5,
  kSkip = 6,
};

// All alignment score-vectors of `entry` against the query; empty if the
// entry cannot match.
void Alignments(const std::vector<ResourceComponent>& entry, size_t entry_pos,
                const std::vector<std::string>& names,
                const std::vector<std::string>& classes, size_t level, bool after_skip,
                std::vector<int>* current, std::vector<std::vector<int>>* out) {
  if (level == names.size()) {
    if (entry_pos == entry.size()) {
      out->push_back(*current);
    }
    return;
  }
  if (entry_pos < entry.size()) {
    const ResourceComponent& component = entry[entry_pos];
    bool binding_ok = component.loose || !after_skip;
    if (binding_ok) {
      int cost = -1;
      if (component.name == names[level]) {
        cost = component.loose ? kNameLoose : kNameTight;
      } else if (component.name == classes[level]) {
        cost = component.loose ? kClassLoose : kClassTight;
      } else if (component.name == "?") {
        cost = component.loose ? kQLoose : kQTight;
      }
      if (cost >= 0) {
        current->push_back(cost);
        Alignments(entry, entry_pos + 1, names, classes, level + 1, false, current, out);
        current->pop_back();
      }
    }
  }
  // Skip this query level; legal only if some upcoming loose binding can
  // absorb it — i.e. the next consumed entry component is loose-bound.
  // (Skipping trailing levels is never legal: the final component must
  // match.)
  if (entry_pos < entry.size() && level + 1 < names.size() + 1) {
    // A skip is absorbed by the loose binding of the *next* matched
    // component, so it must be loose.
    if (entry[entry_pos].loose && level + 1 <= names.size() - 1) {
      current->push_back(kSkip);
      Alignments(entry, entry_pos, names, classes, level + 1, true, current, out);
      current->pop_back();
    }
  }
}

// The reference matcher.
std::optional<std::string> ReferenceGet(
    const std::vector<std::pair<std::string, std::string>>& entries,
    const std::vector<std::string>& names, const std::vector<std::string>& classes) {
  std::optional<std::vector<int>> best_score;
  std::optional<std::string> best_value;
  for (const auto& [specifier, value] : entries) {
    std::vector<ResourceComponent> components = ParseResourceName(specifier);
    std::vector<std::vector<int>> alignments;
    std::vector<int> current;
    Alignments(components, 0, names, classes, 0, false, &current, &alignments);
    for (const std::vector<int>& score : alignments) {
      if (!best_score.has_value() || score < *best_score) {
        best_score = score;
        best_value = value;
      }
    }
  }
  return best_value;
}

std::string RandomComponent(std::mt19937* rng) {
  // A tiny alphabet maximizes collisions between names, classes and '?'.
  static const char* kPool[] = {"a", "b", "A", "B", "?"};
  std::uniform_int_distribution<int> pick(0, 4);
  return kPool[pick(*rng)];
}

class XrdbDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(XrdbDifferentialTest, MatchesBruteForceReference) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> entry_count(1, 12);
  std::uniform_int_distribution<int> component_count(1, 4);
  std::uniform_int_distribution<int> coin(0, 1);

  for (int round = 0; round < 40; ++round) {
    // Random database.
    ResourceDatabase db;
    std::vector<std::pair<std::string, std::string>> entries;
    int n = entry_count(rng);
    for (int i = 0; i < n; ++i) {
      std::string specifier;
      int m = component_count(rng);
      for (int c = 0; c < m; ++c) {
        if (c > 0 || coin(rng) == 0 || true) {
          specifier += (c == 0 ? (coin(rng) ? "*" : "") : (coin(rng) ? "*" : "."));
        }
        specifier += RandomComponent(&rng);
      }
      std::string value = "v" + std::to_string(i);
      if (db.Put(specifier, value)) {
        // Later Puts replace earlier identical specifiers; mirror that.
        std::string canonical = FormatResourceName(ParseResourceName(specifier));
        bool replaced = false;
        for (auto& entry : entries) {
          if (FormatResourceName(ParseResourceName(entry.first)) == canonical) {
            entry.second = value;
            replaced = true;
          }
        }
        if (!replaced) {
          entries.emplace_back(specifier, value);
        }
      }
    }
    // Random query of depth 1..4.  Query components never contain '?'
    // (queries are concrete names), but reuse the small alphabet.
    static const char* kNamePool[] = {"a", "b", "c"};
    static const char* kClassPool[] = {"A", "B", "C"};
    std::uniform_int_distribution<int> depth_dist(1, 4);
    std::uniform_int_distribution<int> name_pick(0, 2);
    int depth = depth_dist(rng);
    std::vector<std::string> names;
    std::vector<std::string> classes;
    for (int d = 0; d < depth; ++d) {
      names.push_back(kNamePool[name_pick(rng)]);
      classes.push_back(kClassPool[name_pick(rng)]);
    }

    std::optional<std::string> trie_result = db.Get(names, classes);
    std::optional<std::string> reference = ReferenceGet(entries, names, classes);
    ASSERT_EQ(trie_result, reference)
        << "round " << round << "\ndb:\n"
        << db.Serialize() << "query names: " << names.size() << " deep";

    // The pre-interned symbol overload (the toolkit fast path) must agree
    // with the string overload on the same query.
    xbase::SymbolInterner& interner = xbase::SymbolInterner::Global();
    std::vector<xbase::Symbol> name_symbols;
    std::vector<xbase::Symbol> class_symbols;
    for (int d = 0; d < depth; ++d) {
      name_symbols.push_back(interner.Intern(names[d]));
      class_symbols.push_back(interner.Intern(classes[d]));
    }
    std::optional<std::string> symbol_result =
        db.Get(std::span<const xbase::Symbol>(name_symbols),
               std::span<const xbase::Symbol>(class_symbols));
    ASSERT_EQ(symbol_result, trie_result) << "round " << round << "\ndb:\n"
                                          << db.Serialize();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XrdbDifferentialTest, ::testing::Range(1, 21));

// Collision-heavy variant: query name and class frequently coincide (and
// may equal "?"), so the candidate deduplication in Match is constantly
// exercised — a wrongly dropped probe or a double-searched subtree with a
// precedence bug diverges from the reference immediately.  Queries run
// deeper (up to 6) to cover skip-chains through loose bindings.
class XrdbCollisionDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(XrdbCollisionDifferentialTest, DedupedMatcherTracksReference) {
  std::mt19937 rng(GetParam() * 7919);
  std::uniform_int_distribution<int> entry_count(1, 10);
  std::uniform_int_distribution<int> component_count(1, 5);
  std::uniform_int_distribution<int> coin(0, 1);

  for (int round = 0; round < 30; ++round) {
    ResourceDatabase db;
    std::vector<std::pair<std::string, std::string>> entries;
    int n = entry_count(rng);
    for (int i = 0; i < n; ++i) {
      std::string specifier;
      int m = component_count(rng);
      for (int c = 0; c < m; ++c) {
        specifier += (c == 0 ? (coin(rng) ? "*" : "") : (coin(rng) ? "*" : "."));
        specifier += RandomComponent(&rng);
      }
      std::string value = "v" + std::to_string(i);
      if (db.Put(specifier, value)) {
        std::string canonical = FormatResourceName(ParseResourceName(specifier));
        bool replaced = false;
        for (auto& entry : entries) {
          if (FormatResourceName(ParseResourceName(entry.first)) == canonical) {
            entry.second = value;
            replaced = true;
          }
        }
        if (!replaced) {
          entries.emplace_back(specifier, value);
        }
      }
    }
    // Query components drawn from the entry alphabet so name == class (and
    // name == "?") happens often; half the levels are forced identical.
    static const char* kQueryPool[] = {"a", "b", "A", "B", "?"};
    std::uniform_int_distribution<int> pool_pick(0, 4);
    std::uniform_int_distribution<int> depth_dist(1, 6);
    int depth = depth_dist(rng);
    std::vector<std::string> names;
    std::vector<std::string> classes;
    for (int d = 0; d < depth; ++d) {
      names.push_back(kQueryPool[pool_pick(rng)]);
      classes.push_back(coin(rng) ? names.back() : kQueryPool[pool_pick(rng)]);
    }

    std::optional<std::string> trie_result = db.Get(names, classes);
    std::optional<std::string> reference = ReferenceGet(entries, names, classes);
    ASSERT_EQ(trie_result, reference)
        << "round " << round << "\ndb:\n"
        << db.Serialize() << "query depth: " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XrdbCollisionDifferentialTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace xrdb
