// Property-fuzz and restart-under-chaos (docs/ROBUSTNESS.md "Restart
// recovery").
//
// Two escalations over the base chaos suite: (1) a seeded property fuzzer —
// the FaultPlan's structured malformations plus clients writing hostile
// ICCCM properties directly — through which the sanitizing decoders must
// hold every invariant; (2) chaos runs that tear the WindowManager down
// mid-sequence and construct a fresh one on the same server, which must
// re-adopt every surviving client with geometry, iconic state and restart
// table intact.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/swm/session.h"
#include "src/xlib/icccm.h"
#include "src/xserver/faults.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;
using swm::SwmHintsRecord;

void CheckInvariants(xserver::Server* server, swm::WindowManager* wm) {
  for (ManagedClient* client : wm->Clients()) {
    ASSERT_TRUE(server->WindowExists(client->window))
        << "dangling ManagedClient for window " << client->window;
    ASSERT_NE(client->frame, nullptr) << "client " << client->window;
    ASSERT_TRUE(server->WindowExists(client->frame->window()))
        << "frame of client " << client->window;
    ASSERT_NE(client->client_panel, nullptr) << "client " << client->window;
    auto tree = server->QueryTree(client->window);
    ASSERT_TRUE(tree.has_value());
    EXPECT_EQ(tree->parent, client->client_panel->window())
        << "client " << client->window << " not parented in its frame";
  }
}

class QuietSwmTest : public SwmTest {
 protected:
  void SetUp() override {
    previous_severity_ = xbase::MinLogSeverity();
    xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
    xbase::ResetLogThrottle();
  }
  void TearDown() override { xbase::SetMinLogSeverity(previous_severity_); }

  xbase::LogSeverity previous_severity_ = xbase::LogSeverity::kInfo;
};

// ---- Property fuzz ---------------------------------------------------------

class PropertyFuzzTest : public QuietSwmTest,
                         public ::testing::WithParamInterface<uint64_t> {};

TEST_P(PropertyFuzzTest, SanitizersSurviveMalformedProperties) {
  uint64_t seed = GetParam();
  StartWm();

  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.malform_property_permille = 350;
  plan.corrupt_property_permille = 80;
  server_->InstallFaultPlan(plan);

  xserver::FaultRng driver(seed * 0x6c8e9cf570932bd5u + 1);
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  int spawned = 0;

  // Two unconditional hostile writes so every seed exercises the decoders
  // beyond what the fault plan happens to roll.
  auto first = Spawn("fuzz-fixed", {"fuzz-fixed", "Fuzz"});
  xlib::SetWmName(&first->display(), first->window(), std::string(50000, 'A'));
  first->display().ChangeProperty(
      first->window(), first->display().InternAtom(xproto::kAtomWmNormalHints),
      first->display().InternAtom("WM_SIZE_HINTS"), 32,
      xserver::PropMode::kReplace, std::vector<uint8_t>{64, 0, 0, 0, 0, 0});
  wm_->ProcessEvents();
  apps.push_back(std::move(first));

  for (int step = 0; step < 50; ++step) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " step " + std::to_string(step));
    int action = driver.Range(0, 5);
    auto& victim = apps[driver.Range(0, static_cast<int>(apps.size()) - 1)];
    switch (action) {
      case 0: {  // Fresh client (bounded population).
        if (apps.size() < 6) {
          xlib::ClientAppConfig config;
          config.name = "fuzz" + std::to_string(spawned++);
          config.wm_class = {config.name, "Fuzz"};
          config.command = {config.name};
          config.geometry = {driver.Range(0, 100), driver.Range(0, 50),
                             driver.Range(10, 40), driver.Range(8, 24)};
          apps.push_back(std::make_unique<xlib::ClientApp>(server_.get(), config));
          apps.back()->Map();
        }
        break;
      }
      case 1: {  // Raw garbage WM_NORMAL_HINTS of random length.
        std::vector<uint8_t> bytes(static_cast<size_t>(driver.Range(0, 60)));
        for (uint8_t& b : bytes) {
          b = static_cast<uint8_t>(driver.Range(0, 255));
        }
        victim->display().ChangeProperty(
            victim->window(),
            victim->display().InternAtom(xproto::kAtomWmNormalHints),
            victim->display().InternAtom("WM_SIZE_HINTS"), 32,
            xserver::PropMode::kReplace, bytes);
        break;
      }
      case 2: {  // Oversized or control-ridden name.
        std::string name(static_cast<size_t>(driver.Range(1, 5000)),
                         static_cast<char>(driver.Range(1, 126)));
        xlib::SetWmName(&victim->display(), victim->window(), name);
        break;
      }
      case 3: {  // WM_TRANSIENT_FOR pointing anywhere, including itself.
        xproto::WindowId owner =
            driver.Roll(300) ? victim->window()
                             : apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]
                                   ->window();
        xlib::SetTransientForHint(&victim->display(), victim->window(), owner);
        break;
      }
      case 4: {  // Configure through the redirect.
        victim->RequestMoveResize({driver.Range(-10, 150), driver.Range(-10, 80),
                                   driver.Range(1, 60), driver.Range(1, 40)});
        break;
      }
      case 5: {  // Iconify / remap churn.
        if (driver.Roll(500)) {
          victim->RequestIconify();
        } else {
          victim->Map();
        }
        break;
      }
    }
    wm_->ProcessEvents();
    CheckInvariants(server_.get(), wm_.get());
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  EXPECT_GT(server_->fault_counters().malformed_properties, 0u)
      << "seed " << seed << " never malformed a property — fuzz was a no-op";
  EXPECT_GT(wm_->display().sanitizer_stats().Total(), 0u)
      << "seed " << seed << " never tripped a sanitizer";

  // Faults off: the WM must still manage new clients normally.
  server_->ClearFaultPlan();
  wm_->ProcessEvents();
  CheckInvariants(server_.get(), wm_.get());
  auto survivor = Spawn("survivor", {"survivor", "Survivor"});
  ASSERT_NE(Managed(*survivor), nullptr);
  EXPECT_TRUE(server_->IsViewable(survivor->window()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));  // 24 distinct seeds.

// ---- Restart recovery ------------------------------------------------------

struct ClientSnapshot {
  xbase::Point position;
  xbase::Size size;
  xproto::WmState state = xproto::WmState::kNormal;
  bool sticky = false;
  // WM_COMMAND / WM_CLIENT_MACHINE as the WM believed them at snapshot time.
  // Under property malformation either belief can be corrupt, in which case
  // the restart record cannot match the clean re-read and only re-adoption
  // (not state restore) can be promised.
  std::string command;
  std::string machine;
};

std::map<xproto::WindowId, ClientSnapshot> MustSnapshot(swm::WindowManager* wm) {
  std::map<xproto::WindowId, ClientSnapshot> out;
  for (ManagedClient* client : wm->Clients()) {
    if (client->is_internal || client->command.empty()) {
      continue;
    }
    ClientSnapshot snap;
    snap.position = client->ClientDesktopPosition();
    std::optional<xbase::Rect> geometry = wm->display().GetGeometry(client->window);
    if (geometry.has_value()) {
      snap.size = geometry->size();
    }
    snap.state = client->state;
    snap.sticky = client->sticky;
    snap.command = client->command;
    snap.machine = client->machine;
    out[client->window] = snap;
  }
  return out;
}

// `true_commands` maps each window to the WM_COMMAND its client actually
// set.  Where the WM's snapshot belief matches it, the restart record must
// apply in full; where malformation corrupted the belief, the record cannot
// match and only re-adoption is required.
void VerifyReadopted(xserver::Server* server, swm::WindowManager* wm,
                     const std::map<xproto::WindowId, ClientSnapshot>& before,
                     const std::map<xproto::WindowId, std::string>& true_commands) {
  for (const auto& [window, snap] : before) {
    if (!server->WindowExists(window)) {
      continue;  // Destroyed between snapshot and restart; nothing to adopt.
    }
    SCOPED_TRACE("window " + std::to_string(window));
    ManagedClient* client = wm->FindClient(window);
    ASSERT_NE(client, nullptr) << "surviving client not re-adopted";
    auto truth = true_commands.find(window);
    if (truth == true_commands.end() || snap.command != truth->second ||
        snap.machine != "localhost") {  // Every test client's true machine.
      continue;  // Corrupted belief: re-adopted, but state restore is off.
    }
    EXPECT_TRUE(client->restored_from_session);
    // SessionRecordFor clamps positions to the visible desktop (>= 0).
    EXPECT_EQ(client->ClientDesktopPosition().x, std::max(0, snap.position.x));
    EXPECT_EQ(client->ClientDesktopPosition().y, std::max(0, snap.position.y));
    std::optional<xbase::Rect> geometry = wm->display().GetGeometry(window);
    ASSERT_TRUE(geometry.has_value());
    EXPECT_EQ(geometry->width, snap.size.width);
    EXPECT_EQ(geometry->height, snap.size.height);
    EXPECT_EQ(client->state, snap.state);
    EXPECT_EQ(client->sticky, snap.sticky);
  }
}

class RestartRecoveryTest : public QuietSwmTest {
 protected:
  void RestartWm() {
    wm_.reset();  // Destructor persists SWM_RESTART_INFO and remaps iconics.
    swm::WindowManager::Options options;
    options.template_name = "openlook";
    wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
    ASSERT_TRUE(wm_->Start());
    wm_->ProcessEvents();
  }
};

TEST_F(RestartRecoveryTest, SuccessorReadoptsClientsWithStateIntact) {
  StartWm();
  auto alpha = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 40, 20});
  alpha->RequestMoveResize({30, 15, 44, 22});
  wm_->ProcessEvents();

  auto beta = Spawn("beta", {"beta", "Beta"}, {10, 10, 30, 12});
  beta->RequestIconify();
  wm_->ProcessEvents();
  ASSERT_EQ(Managed(*beta)->state, xproto::WmState::kIconic);

  auto gamma = Spawn("gamma", {"gamma", "Gamma"}, {5, 5, 24, 16});
  wm_->SetSticky(Managed(*gamma), true);
  wm_->ProcessEvents();
  ASSERT_TRUE(Managed(*gamma)->sticky);

  // An unconsumed restart record (a client that never reappeared) must ride
  // through the restart untouched.
  SwmHintsRecord ghost;
  ghost.geometry = {5, 5, 20, 10};
  ghost.command = "ghost-app";
  wm_->restart_table().Add(ghost);

  std::map<xproto::WindowId, ClientSnapshot> before = MustSnapshot(wm_.get());
  ASSERT_EQ(before.size(), 3u);

  RestartWm();
  alpha->ProcessEvents();
  beta->ProcessEvents();
  gamma->ProcessEvents();

  std::map<xproto::WindowId, std::string> true_commands{
      {alpha->window(), "alpha"}, {beta->window(), "beta"}, {gamma->window(), "gamma"}};
  VerifyReadopted(server_.get(), wm_.get(), before, true_commands);
  CheckInvariants(server_.get(), wm_.get());

  bool ghost_preserved = false;
  for (const SwmHintsRecord& record : wm_->restart_table().records()) {
    if (record.command == "ghost-app") {
      ghost_preserved = true;
      EXPECT_EQ(record.geometry.width, 20);
    }
  }
  EXPECT_TRUE(ghost_preserved) << "unconsumed restart record lost across restart";
}

class RestartChaosTest : public QuietSwmTest,
                         public ::testing::WithParamInterface<uint64_t> {};

TEST_P(RestartChaosTest, MidSequenceRestartReadoptsSurvivors) {
  uint64_t seed = GetParam();
  StartWm();

  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.destroy_on_map_permille = 200;
  plan.destroy_on_configure_permille = 60;
  plan.malform_property_permille = 150;
  plan.duplicate_event_permille = 60;
  plan.delay_event_permille = 60;
  server_->InstallFaultPlan(plan);

  xserver::FaultRng driver(seed * 0x9e3779b9u + 7);
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  int spawned = 0;

  for (int step = 0; step < 30; ++step) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " step " + std::to_string(step));
    int action = apps.empty() ? 0 : driver.Range(0, 4);
    switch (action) {
      case 0: {
        xlib::ClientAppConfig config;
        config.name = "rc" + std::to_string(spawned++);
        config.wm_class = {config.name, "RestartChaos"};
        config.command = {config.name};
        config.geometry = {driver.Range(0, 120), driver.Range(0, 60),
                           driver.Range(10, 50), driver.Range(8, 30)};
        apps.push_back(std::make_unique<xlib::ClientApp>(server_.get(), config));
        apps.back()->Map();
        break;
      }
      case 1: {
        auto& app = apps[driver.Range(0, static_cast<int>(apps.size()) - 1)];
        app->display().DestroyWindow(app->window());
        break;
      }
      case 2:
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->RequestMoveResize(
            {driver.Range(-10, 150), driver.Range(-10, 80), driver.Range(1, 60),
             driver.Range(1, 40)});
        break;
      case 3:
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->RequestIconify();
        break;
      case 4:
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->Map();
        break;
    }
    wm_->ProcessEvents();
    CheckInvariants(server_.get(), wm_.get());
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  // Mid-sequence restart.  Chaos has already happened; faults pause so the
  // recovery itself is deterministic and the assertions are exact.
  server_->ClearFaultPlan();
  wm_->ProcessEvents();
  CheckInvariants(server_.get(), wm_.get());
  std::map<xproto::WindowId, ClientSnapshot> before = MustSnapshot(wm_.get());

  wm_.reset();
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
  ASSERT_TRUE(wm_->Start());
  wm_->ProcessEvents();
  std::map<xproto::WindowId, std::string> true_commands;
  for (auto& app : apps) {
    true_commands[app->window()] = app->config().command[0];
    if (server_->WindowExists(app->window())) {
      app->ProcessEvents();
    }
  }

  VerifyReadopted(server_.get(), wm_.get(), before, true_commands);
  CheckInvariants(server_.get(), wm_.get());

  // The restarted WM is fully functional, chaos counters prove the run bit.
  auto survivor = Spawn("survivor", {"survivor", "Survivor"});
  ASSERT_NE(Managed(*survivor), nullptr);
  EXPECT_GT(server_->fault_counters().Total(), 0u)
      << "seed " << seed << " injected nothing — chaos was a no-op";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestartChaosTest,
                         ::testing::Range<uint64_t>(1, 25));  // 24 distinct seeds.

}  // namespace
}  // namespace swm_test
