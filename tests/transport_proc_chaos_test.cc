// Multi-process crash-tolerance chaos suite (docs/PROTOCOL.md
// "Out-of-process operation").  Per seed, a WireHost serves three forked
// clients: two survivors issuing a seeded stream of queries, and one victim
// that is SIGKILLed with a partial request frame on the wire (and, on odd
// seeds, an unread reply in flight).  The survivors hash every server frame
// they receive, byte-for-byte, and finish their scripts only after the
// victim is dead and swept.  A control run of the same seed — identical
// survivors, a victim that exits cleanly — must produce byte-identical
// survivor reply streams: one client's crash is invisible to every other.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/poller.h"
#include "src/xlib/display.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/server.h"
#include "src/xserver/wire_host.h"

namespace xserver {
namespace {

using xproto::WireClientEndpoint;
using xproto::WindowId;

constexpr int kSeeds = 24;
constexpr int kSurvivors = 2;

const char* const kAtomNames[] = {"SWM_CHAOS_ATOM_0", "SWM_CHAOS_ATOM_1",
                                  "SWM_CHAOS_ATOM_2"};

std::string RunSocketPath(uint32_t seed, bool kill_mode) {
  return "@swm-proc-chaos-" + std::to_string(::getpid()) + "-" +
         std::to_string(seed) + (kill_mode ? "-kill" : "-ctrl");
}

void FlushAll(WireClientEndpoint* ep) {
  for (int i = 0; i < 1000 && ep->queued_bytes() > 0; ++i) {
    ep->Flush();
  }
}

// Child-side: block until one reply frame arrives, folding every inbound
// server frame (replies, errors, events — whatever the stream carries) into
// the chained FNV-1a hash.  Returns false on timeout or a dead socket.
bool AwaitReply(WireClientEndpoint* ep, uint64_t* hash, uint32_t* frames) {
  int64_t deadline = xbase::EventLoop::NowMs() + 5000;
  while (xbase::EventLoop::NowMs() < deadline) {
    ep->Flush();
    ep->Poll();
    bool got_reply = false;
    while (std::optional<std::vector<uint8_t>> frame = ep->NextFrame()) {
      for (uint8_t b : *frame) {
        *hash = (*hash ^ b) * 1099511628211ull;
      }
      ++*frames;
      if (!frame->empty() && (*frame)[0] == 1) {
        got_reply = true;
      }
    }
    if (got_reply) {
      return true;
    }
    if (!ep->open()) {
      return false;
    }
    struct pollfd pfd = {ep->PollFd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
  }
  return false;
}

// The seeded query `request_index` issues for survivor `idx`.  Every choice
// touches only pre-existing server state — root windows, parent-interned
// atoms, the screen table, the survivor's own (empty) window list — so the
// answers cannot depend on what any other client did or when it died.
xproto::Request SurvivorRequest(uint32_t seed, int idx, int request_index,
                                WindowId root) {
  switch ((seed * 7 + static_cast<uint32_t>(idx) * 13 +
           static_cast<uint32_t>(request_index)) %
          4) {
    case 0:
      return xproto::GetGeometryRequest{.window = root};
    case 1:
      return xproto::InternAtomRequest{.name = kAtomNames[request_index % 3]};
    case 2:
      return xproto::QueryScreensRequest{};
    default:
      return xproto::QueryClientWindowsRequest{};
  }
}

struct SurvivorResult {
  uint64_t hash = 1469598103934665603ull;
  uint32_t frames = 0;
  bool ok = false;
};

struct RunResult {
  SurvivorResult survivors[kSurvivors];
  uint64_t mid_frame_deaths = 0;
  uint64_t peer_closed = 0;
  int misbehavior_charges = 0;
  size_t root_children_after = 0;
  bool completed = false;
};

// One full session: host + 2 survivor processes + 1 victim process.  In kill
// mode the victim dies by SIGKILL mid-request; in control mode it exits
// cleanly.  Survivors run the same script either way, and their second half
// only starts once the victim's connection is gone.
RunResult RunSeed(uint32_t seed, bool kill_mode) {
  RunResult result;
  Server server;
  WindowId root = server.RootWindow(0);
  {
    // Pre-intern the atoms the survivors query, so their ids are fixed
    // before any child races to intern them.
    xlib::Display parent_dpy(&server, "chaos-parent");
    for (const char* name : kAtomNames) {
      parent_dpy.InternAtom(name);
    }
  }

  WireHostOptions options;
  options.misbehavior_hook = [&](xproto::ClientId, int) {
    ++result.misbehavior_charges;
  };
  WireHost host(&server, RunSocketPath(seed, kill_mode), std::move(options));
  if (!host.ok()) {
    return result;
  }

  int total_requests = 6 + static_cast<int>(seed % 5);
  int first_half = total_requests / 2;

  int ready_pipe[kSurvivors][2];
  int go_pipe[kSurvivors][2];
  int result_pipe[kSurvivors][2];
  pid_t survivor_pid[kSurvivors];
  for (int idx = 0; idx < kSurvivors; ++idx) {
    if (::pipe(ready_pipe[idx]) != 0 || ::pipe(go_pipe[idx]) != 0 ||
        ::pipe(result_pipe[idx]) != 0) {
      return result;
    }
  }

  for (int idx = 0; idx < kSurvivors; ++idx) {
    survivor_pid[idx] = ::fork();
    if (survivor_pid[idx] == 0) {
      // ---- survivor child ----
      std::unique_ptr<xproto::ByteChannel> channel =
          xproto::ConnectSocket(host.socket_path());
      if (channel == nullptr) {
        ::_exit(40);
      }
      WireClientEndpoint ep(std::move(channel));
      SurvivorResult mine;
      for (int i = 0; i < total_requests; ++i) {
        if (i == first_half) {
          // Halfway barrier: everything after this line runs against a
          // server that has already watched the victim die.
          uint8_t b = 1;
          if (::write(ready_pipe[idx][1], &b, 1) != 1 ||
              ::read(go_pipe[idx][0], &b, 1) != 1) {
            ::_exit(41);
          }
        }
        ep.QueueRequest(SurvivorRequest(seed, idx, i, root));
        if (!AwaitReply(&ep, &mine.hash, &mine.frames)) {
          ::_exit(42);
        }
      }
      if (::write(result_pipe[idx][1], &mine.hash, sizeof mine.hash) !=
              sizeof mine.hash ||
          ::write(result_pipe[idx][1], &mine.frames, sizeof mine.frames) !=
              sizeof mine.frames) {
        ::_exit(43);
      }
      ::_exit(0);
    }
  }

  pid_t victim_pid = ::fork();
  if (victim_pid == 0) {
    // ---- victim child ----
    std::unique_ptr<xproto::ByteChannel> channel =
        xproto::ConnectSocket(host.socket_path());
    if (channel == nullptr) {
      ::_exit(50);
    }
    WireClientEndpoint ep(std::move(channel));
    int windows = 1 + static_cast<int>(seed % 3);
    for (int i = 0; i < windows; ++i) {
      ep.QueueRequest(xproto::CreateWindowRequest{
          .parent = root, .geometry = {i * 8, 4, 6, 6}});
    }
    if (seed % 2 == 1) {
      // Mid-reply death: ask a question, never read the answer.
      ep.QueueRequest(xproto::GetGeometryRequest{.window = root});
    }
    FlushAll(&ep);
    xproto::WireWriter w;
    xproto::EncodeRequest(xproto::MapWindowRequest{.window = 0xDEADBEEF}, &w);
    std::vector<uint8_t> frame = w.Take();
    if (kill_mode) {
      size_t cut = 1 + seed % (frame.size() - 1);
      ep.QueueBytes(std::span<const uint8_t>(frame).first(cut));
      FlushAll(&ep);
      ::raise(SIGKILL);
      ::_exit(51);  // Unreachable.
    }
    ep.QueueBytes(frame);
    FlushAll(&ep);
    ::_exit(0);
  }

  // ---- parent: serve the loop, sequence the phases ----
  bool ok =
      host.RunUntil([&]() { return host.stats().accepted == kSurvivors + 1; },
                    10000);
  // The victim dies (or finishes) on its own; wait for its session to be
  // swept while the survivors idle at the halfway barrier.
  ok = ok && host.RunUntil(
                 [&]() { return host.connection_count() == kSurvivors; }, 10000);
  auto pipe_ready = [](int fd) {
    struct pollfd pfd = {fd, POLLIN, 0};
    return ::poll(&pfd, 1, 0) == 1;
  };
  for (int idx = 0; idx < kSurvivors && ok; ++idx) {
    ok = host.RunUntil([&]() { return pipe_ready(ready_pipe[idx][0]); }, 10000);
    uint8_t b = 0;
    ok = ok && ::read(ready_pipe[idx][0], &b, 1) == 1;
  }
  result.mid_frame_deaths = host.stats().mid_frame_deaths;
  result.peer_closed = host.closed_with(CloseReason::kPeerClosed);
  result.root_children_after = server.QueryTree(root)->children.size();
  for (int idx = 0; idx < kSurvivors && ok; ++idx) {
    uint8_t b = 1;
    ok = ::write(go_pipe[idx][1], &b, 1) == 1;
  }
  ok = ok &&
       host.RunUntil([&]() { return host.connection_count() == 0; }, 10000);

  int status = 0;
  ::waitpid(victim_pid, &status, 0);
  bool victim_ok = kill_mode
                       ? (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
                       : (WIFEXITED(status) && WEXITSTATUS(status) == 0);
  for (int idx = 0; idx < kSurvivors; ++idx) {
    ::waitpid(survivor_pid[idx], &status, 0);
    SurvivorResult& sr = result.survivors[idx];
    sr.ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (sr.ok) {
      sr.ok = ::read(result_pipe[idx][0], &sr.hash, sizeof sr.hash) ==
                  sizeof sr.hash &&
              ::read(result_pipe[idx][0], &sr.frames, sizeof sr.frames) ==
                  sizeof sr.frames;
    }
  }
  for (int idx = 0; idx < kSurvivors; ++idx) {
    ::close(ready_pipe[idx][0]);
    ::close(ready_pipe[idx][1]);
    ::close(go_pipe[idx][0]);
    ::close(go_pipe[idx][1]);
    ::close(result_pipe[idx][0]);
    ::close(result_pipe[idx][1]);
  }
  result.completed = ok && victim_ok;
  return result;
}

TEST(TransportProcChaos, SurvivorStreamsAreByteIdenticalAcrossVictimCrash) {
  for (uint32_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunResult killed = RunSeed(seed, /*kill_mode=*/true);
    RunResult control = RunSeed(seed, /*kill_mode=*/false);

    ASSERT_TRUE(killed.completed) << "kill run did not complete";
    ASSERT_TRUE(control.completed) << "control run did not complete";

    // The crash was seen for what it was: one mid-request death, typed
    // kPeerClosed, a ledger charge, and the victim's windows swept while
    // the survivors were still mid-session.
    EXPECT_EQ(killed.mid_frame_deaths, 1u);
    EXPECT_GE(killed.peer_closed, 1u);
    EXPECT_GT(killed.misbehavior_charges, 0);
    EXPECT_EQ(killed.root_children_after, 0u)
        << "victim windows must be swept by the time survivors resume";
    EXPECT_EQ(control.mid_frame_deaths, 0u)
        << "a clean exit must not count as a mid-frame death";

    // The acceptance bar: every survivor's reply stream is byte-identical
    // with and without the crash.
    for (int idx = 0; idx < kSurvivors; ++idx) {
      SCOPED_TRACE("survivor " + std::to_string(idx));
      ASSERT_TRUE(killed.survivors[idx].ok);
      ASSERT_TRUE(control.survivors[idx].ok);
      EXPECT_GT(killed.survivors[idx].frames, 0u);
      EXPECT_EQ(killed.survivors[idx].frames, control.survivors[idx].frames);
      EXPECT_EQ(killed.survivors[idx].hash, control.survivors[idx].hash)
          << "a crash leaked into another client's reply stream";
    }
  }
}

}  // namespace
}  // namespace xserver
