// Out-of-process client tests (docs/PROTOCOL.md "Out-of-process operation"):
// a WireHost accept loop serving real forked processes over a unix socket,
// the epoll readiness core moving every byte, wall-clock idle/stall
// deadlines, SIGKILL crash tolerance (typed close reason, window sweep,
// ledger charge, surviving clients unperturbed), the resource-configured
// transport limits, and the live-socket trace-replay cross-version gate.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/swm/wm.h"
#include "src/xlib/display.h"
#include "src/xproto/trace.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/connection.h"
#include "src/xserver/replay.h"
#include "src/xserver/server.h"
#include "src/xserver/wire_host.h"

namespace xserver {
namespace {

using xproto::WireClientEndpoint;
using xproto::WindowId;

// Abstract-namespace socket names: unique per process and per test, no
// filesystem residue even if a test aborts.
std::string UniqueSocketPath(const std::string& tag) {
  static int counter = 0;
  return "@swm-proc-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(++counter);
}

// Queues `request`, then drives the host loop until the client endpoint has
// decoded one reply frame (or 2s passes).
std::optional<xproto::Reply> HostRoundTrip(WireHost* host, WireClientEndpoint* ep,
                                           const xproto::Request& request,
                                           uint16_t* sequence_out = nullptr) {
  ep->QueueRequest(request);
  std::optional<xproto::Reply> out;
  host->RunUntil(
      [&]() {
        ep->Flush();
        ep->Poll();
        xproto::Reply reply;
        xproto::ParseError error;
        uint16_t sequence = 0;
        if (ep->NextReply(&reply, &error, &sequence)) {
          out = std::move(reply);
          if (sequence_out != nullptr) {
            *sequence_out = sequence;
          }
          return true;
        }
        return false;
      },
      /*budget_ms=*/2000);
  return out;
}

void FlushAll(WireClientEndpoint* ep) {
  for (int i = 0; i < 1000 && ep->queued_bytes() > 0; ++i) {
    ep->Flush();
  }
}

struct SyncPipe {
  int fds[2] = {-1, -1};
  SyncPipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~SyncPipe() {
    CloseRead();
    CloseWrite();
  }
  void CloseRead() {
    if (fds[0] >= 0) {
      ::close(fds[0]);
      fds[0] = -1;
    }
  }
  void CloseWrite() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
  // Child side: blocking.
  void Signal() {
    uint8_t b = 1;
    (void)!::write(fds[1], &b, 1);
  }
  bool AwaitBlocking() {
    uint8_t b = 0;
    return ::read(fds[0], &b, 1) == 1;
  }
  // Parent side: non-blocking probe, to run inside a host loop predicate.
  bool Poll() {
    int flags = ::fcntl(fds[0], F_GETFL);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    uint8_t b = 0;
    bool got = ::read(fds[0], &b, 1) == 1;
    ::fcntl(fds[0], F_SETFL, flags);
    return got;
  }
};

// ---- Forked xlib::Display over the listener --------------------------------

// Child exit codes, so a failure names the step that died.
enum ChildStatus : int {
  kChildOk = 0,
  kChildNoDisplay = 10,
  kChildBadScreens = 11,
  kChildCreateFailed = 12,
  kChildGeometryMismatch = 13,
  kChildAtomMismatch = 14,
  kChildPropertyMismatch = 15,
  kChildSawErrors = 16,
  kChildHadFallbacks = 17,
  kChildNoReplies = 18,
};

TEST(WireHost, ForkedDisplayRoundTripsWithZeroFallbacks) {
  Server server;
  std::string path = UniqueSocketPath("forked");
  WireHost host(&server, path);
  ASSERT_TRUE(host.ok());

  SyncPipe ready;  // child -> parent: "windows created, inspect me"
  SyncPipe go;     // parent -> child: "inspected, exit now"

  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // ---- child process: a real out-of-process client ----
    ready.CloseRead();
    go.CloseWrite();
    ::setenv("SWM_SOCKET", path.c_str(), 1);
    std::unique_ptr<xlib::Display> display = xlib::Display::FromEnv("proc-child");
    if (display == nullptr || !display->Connected()) {
      ::_exit(kChildNoDisplay);
    }
    if (display->ScreenCount() < 1 || display->RootWindow(0) == xproto::kNone) {
      ::_exit(kChildBadScreens);
    }
    WindowId root = display->RootWindow(0);
    WindowId w1 = display->CreateWindow(root, {5, 5, 60, 40}, 2);
    WindowId w2 = display->CreateWindow(root, {70, 8, 20, 10});
    if (w1 == xproto::kNone || w2 == xproto::kNone || w1 == w2) {
      ::_exit(kChildCreateFailed);
    }
    display->MapWindow(w1);
    std::optional<xbase::Rect> geo = display->GetGeometry(w1);
    if (!geo.has_value() || *geo != (xbase::Rect{5, 5, 60, 40})) {
      ::_exit(kChildGeometryMismatch);
    }
    xproto::AtomId atom = display->InternAtom("SWM_PROC_TEST");
    if (atom == 0 ||
        display->GetAtomName(atom) != std::optional<std::string>("SWM_PROC_TEST")) {
      ::_exit(kChildAtomMismatch);
    }
    display->SetStringProperty(w1, "WM_NAME", "forked-client");
    if (display->GetStringProperty(w1, "WM_NAME") !=
        std::optional<std::string>("forked-client")) {
      ::_exit(kChildPropertyMismatch);
    }
    if (display->ErrorCount() != 0) {
      ::_exit(kChildSawErrors);
    }
    const xlib::Display::WireStats& stats = display->wire_stats();
    if (stats.wire_fallbacks != 0 || stats.reply_parse_errors != 0) {
      ::_exit(kChildHadFallbacks);
    }
    if (stats.wire_replies == 0) {
      ::_exit(kChildNoReplies);
    }
    ready.Signal();
    (void)go.AwaitBlocking();
    ::_exit(kChildOk);  // _exit closes the socket: a clean EOF disconnect.
  }

  // ---- parent process: serve the readiness loop ----
  ready.CloseWrite();
  go.CloseRead();
  ASSERT_TRUE(host.RunUntil([&]() { return ready.Poll(); }, /*budget_ms=*/10000))
      << "child never finished its session";

  // The child's whole session is live server state now.
  ASSERT_EQ(host.stats().accepted, 1u);
  ASSERT_EQ(host.connection_count(), 1u);
  xproto::ClientId client = host.clients()[0];
  EXPECT_TRUE(server.HasClient(client));
  std::vector<WindowId> owned = server.ClientWindows(client);
  EXPECT_EQ(owned.size(), 2u);
  Connection* conn = host.FindConnection(client);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->state(), ConnectionState::kEstablished);
  EXPECT_GT(conn->stats().requests_dispatched, 0u);
  EXPECT_EQ(conn->stats().parse_errors, 0u);

  go.Signal();
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), kChildOk) << "child failed at step "
                                           << WEXITSTATUS(status);

  // EOF tears the session down: typed reason, windows swept, no mid-frame
  // residue from a clean exit.
  ASSERT_TRUE(host.RunUntil([&]() { return host.connection_count() == 0; },
                            /*budget_ms=*/5000));
  EXPECT_EQ(host.stats().closed, 1u);
  EXPECT_EQ(host.closed_with(CloseReason::kPeerClosed), 1u);
  EXPECT_EQ(host.stats().mid_frame_deaths, 0u);
  EXPECT_FALSE(server.HasClient(client));
  for (WindowId w : owned) {
    EXPECT_FALSE(server.WindowExists(w));
  }
}

// ---- SIGKILL mid-request ---------------------------------------------------

TEST(WireHost, SigkillMidRequestClosesOnlyVictim) {
  Server server;
  std::string path = UniqueSocketPath("sigkill");
  std::vector<std::pair<xproto::ClientId, int>> charges;
  WireHostOptions options;
  options.misbehavior_hook = [&](xproto::ClientId client, int cost) {
    charges.emplace_back(client, cost);
  };
  WireHost host(&server, path, std::move(options));
  ASSERT_TRUE(host.ok());
  WindowId root = server.RootWindow(0);

  // The survivor: a parent-side endpoint through the same listener.
  std::unique_ptr<xproto::ByteChannel> survivor_channel = xproto::ConnectSocket(path);
  ASSERT_NE(survivor_channel, nullptr);
  WireClientEndpoint survivor(std::move(survivor_channel));
  ASSERT_TRUE(host.RunUntil([&]() { return host.stats().accepted == 1; }, 2000));
  xproto::ClientId survivor_id = host.clients()[0];

  survivor.QueueRequest(xproto::CreateWindowRequest{.parent = root,
                                                    .geometry = {0, 0, 64, 64}});
  std::optional<xproto::Reply> before =
      HostRoundTrip(&host, &survivor, xproto::GetGeometryRequest{.window = root});
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(server.ClientWindows(survivor_id).size(), 1u);
  WindowId survivor_win = server.ClientWindows(survivor_id)[0];

  // The victim: a forked process killed with a partial frame on the wire.
  pid_t victim_pid = ::fork();
  ASSERT_GE(victim_pid, 0);
  if (victim_pid == 0) {
    std::unique_ptr<xproto::ByteChannel> channel = xproto::ConnectSocket(path);
    if (channel == nullptr) {
      ::_exit(1);
    }
    WireClientEndpoint ep(std::move(channel));
    ep.QueueRequest(xproto::CreateWindowRequest{.parent = root,
                                                .geometry = {9, 9, 30, 20}});
    FlushAll(&ep);
    // Half a MapWindow request, then death: the classic mid-request SIGKILL.
    xproto::WireWriter w;
    xproto::EncodeRequest(xproto::MapWindowRequest{.window = 1}, &w);
    std::vector<uint8_t> frame = w.Take();
    ep.QueueBytes(std::span<const uint8_t>(frame).first(frame.size() / 2));
    FlushAll(&ep);
    ::raise(SIGKILL);
    ::_exit(2);  // Unreachable.
  }

  // Serve until the victim's connection has come and gone.
  ASSERT_TRUE(host.RunUntil([&]() { return host.stats().accepted == 2; }, 5000));
  ASSERT_TRUE(
      host.RunUntil([&]() { return host.connection_count() == 1; }, 5000))
      << "victim connection never reaped";
  int status = 0;
  ASSERT_EQ(::waitpid(victim_pid, &status, 0), victim_pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The victim died mid-frame: typed reason, latched flag, ledger charge,
  // and its windows (including the one from the completed request) swept.
  EXPECT_EQ(host.closed_with(CloseReason::kPeerClosed), 1u);
  EXPECT_EQ(host.stats().mid_frame_deaths, 1u);
  bool victim_charged = false;
  for (const auto& [client, cost] : charges) {
    if (client != survivor_id && cost > 0) {
      victim_charged = true;
    }
  }
  EXPECT_TRUE(victim_charged) << "mid-frame death must charge the ledger";
  EXPECT_EQ(server.ClientWindows(survivor_id).size(), 1u);
  std::vector<WindowId> root_children = server.QueryTree(root)->children;
  EXPECT_EQ(root_children, std::vector<WindowId>{survivor_win});

  // The survivor never notices: same query, byte-equal payload, sequence
  // space intact, no errors on its stream.
  uint16_t sequence = 0;
  std::optional<xproto::Reply> after = HostRoundTrip(
      &host, &survivor, xproto::GetGeometryRequest{.window = root}, &sequence);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(*after == *before) << "survivor reply payload changed";
  EXPECT_EQ(sequence, server.SequenceNumber(survivor_id));
  Connection* survivor_conn = host.FindConnection(survivor_id);
  ASSERT_NE(survivor_conn, nullptr);
  EXPECT_EQ(survivor_conn->stats().parse_errors, 0u);
  EXPECT_EQ(server.ErrorCount(survivor_id), 0u);
}

// ---- Wall-clock deadlines --------------------------------------------------

TEST(WireHost, ReadIdleDeadlineExpiresSilentConnection) {
  Server server;
  WireHostOptions options;
  options.limits.read_idle_ms = 40;
  int charges = 0;
  options.misbehavior_hook = [&](xproto::ClientId, int) { ++charges; };
  WireHost host(&server, UniqueSocketPath("idle"), std::move(options));
  ASSERT_TRUE(host.ok());

  std::unique_ptr<xproto::ByteChannel> channel =
      xproto::ConnectSocket(host.socket_path());
  ASSERT_NE(channel, nullptr);
  WireClientEndpoint ep(std::move(channel));
  ASSERT_TRUE(host.RunUntil([&]() { return host.stats().accepted == 1; }, 2000));

  // Say nothing.  The timerfd wheel, not a pump counter, must close us.
  ASSERT_TRUE(host.RunUntil([&]() { return host.connection_count() == 0; }, 5000));
  EXPECT_EQ(host.stats().idle_expirations, 1u);
  EXPECT_EQ(host.closed_with(CloseReason::kReadIdle), 1u);
  EXPECT_GT(charges, 0) << "deadline expiry is misbehavior";
  // The server side sees a closed socket now.
  ep.Poll();
  EXPECT_FALSE(ep.open());
}

TEST(WireHost, ActiveConnectionOutlivesIdleDeadline) {
  Server server;
  WireHostOptions options;
  options.limits.read_idle_ms = 120;
  WireHost host(&server, UniqueSocketPath("busy"), std::move(options));
  ASSERT_TRUE(host.ok());
  std::unique_ptr<xproto::ByteChannel> channel =
      xproto::ConnectSocket(host.socket_path());
  ASSERT_NE(channel, nullptr);
  WireClientEndpoint ep(std::move(channel));
  ASSERT_TRUE(host.RunUntil([&]() { return host.stats().accepted == 1; }, 2000));

  // Keep trickling requests for ~3 deadline windows; each inbound byte
  // re-arms the clock, so the connection must stay up throughout.
  int64_t start = xbase::EventLoop::NowMs();
  while (xbase::EventLoop::NowMs() - start < 360) {
    std::optional<xproto::Reply> reply = HostRoundTrip(
        &host, &ep, xproto::GetGeometryRequest{.window = server.RootWindow(0)});
    ASSERT_TRUE(reply.has_value());
    host.PollOnce(20);
  }
  EXPECT_EQ(host.connection_count(), 1u);
  EXPECT_EQ(host.stats().idle_expirations, 0u);
}

TEST(WireHost, WriteStallDeadlineExpiresUnreadPeer) {
  Server server;
  // Enough reply volume to pin both kernel buffers, and a high-water mark
  // raised out of the way so only the wall-clock path can close us.
  xlib::Display filler(&server, "filler");
  for (int i = 0; i < 400; ++i) {
    ASSERT_NE(filler.CreateWindow(server.RootWindow(0), {0, 0, 4, 4}),
              xproto::kNone);
  }
  WireHostOptions options;
  options.limits.write_stall_ms = 40;
  options.limits.write_queue_high_water = 64 * 1024 * 1024;
  options.limits.stall_pump_limit = 1 << 30;
  WireHost host(&server, UniqueSocketPath("stall"), std::move(options));
  ASSERT_TRUE(host.ok());

  std::unique_ptr<xproto::ByteChannel> channel =
      xproto::ConnectSocket(host.socket_path());
  ASSERT_NE(channel, nullptr);
  WireClientEndpoint ep(std::move(channel));
  // ~600 QueryTree replies of ~1.6KB each, and a client that never reads.
  for (int i = 0; i < 600; ++i) {
    ep.QueueRequest(xproto::QueryTreeRequest{.window = server.RootWindow(0)});
  }
  // The 4800 request bytes fit in the kernel buffer without the host loop
  // running at all, so wait for the accept explicitly — otherwise
  // `connection_count() == 0` below is trivially true before the session
  // even exists.
  ASSERT_TRUE(host.RunUntil(
      [&]() {
        ep.Flush();
        return host.connection_count() == 1 && ep.queued_bytes() == 0;
      },
      2000));

  ASSERT_TRUE(host.RunUntil([&]() { return host.connection_count() == 0; }, 5000))
      << "stalled connection never expired";
  EXPECT_EQ(host.stats().stall_expirations, 1u);
  EXPECT_EQ(host.closed_with(CloseReason::kWriteStalled), 1u);
}

// ---- Resource-configured limits (swm.transport.*) --------------------------

TEST(TransportResources, DefaultsDocumentedInHeader) {
  Server server;
  swm::WindowManager wm(&server, {});
  ConnectionLimits limits = wm.TransportLimits();
  EXPECT_EQ(limits.read_idle_ms, 0) << "idle deadline defaults to disabled";
  EXPECT_EQ(limits.write_stall_ms, 5000);
}

TEST(TransportResources, ResourceDatabaseOverridesDeadlines) {
  Server server;
  swm::WindowManager::Options options;
  options.resources =
      "swm.transport.idleMs: 250\n"
      "swm.transport.stallMs:  90\n";
  swm::WindowManager wm(&server, options);
  ConnectionLimits limits = wm.TransportLimits();
  EXPECT_EQ(limits.read_idle_ms, 250);
  EXPECT_EQ(limits.write_stall_ms, 90);
}

TEST(TransportResources, MalformedValuesFallBackToDefaults) {
  Server server;
  swm::WindowManager::Options options;
  options.resources =
      "swm.transport.idleMs: soon\n"
      "swm.transport.stallMs: -4\n";
  swm::WindowManager wm(&server, options);
  ConnectionLimits limits = wm.TransportLimits();
  EXPECT_EQ(limits.read_idle_ms, 0);
  EXPECT_EQ(limits.write_stall_ms, 5000);
}

// ---- FromEnv ---------------------------------------------------------------

TEST(DisplayRemote, FromEnvWithoutSocketReturnsNull) {
  ::unsetenv("SWM_SOCKET");
  EXPECT_EQ(xlib::Display::FromEnv(), nullptr);
  ::setenv("SWM_SOCKET", UniqueSocketPath("nowhere").c_str(), 1);
  EXPECT_EQ(xlib::Display::FromEnv(), nullptr) << "no listener behind the path";
  ::unsetenv("SWM_SOCKET");
}

TEST(WireHost, BindFailureLeavesHostInert) {
  Server server;
  std::string path = UniqueSocketPath("dup");
  WireHost first(&server, path);
  ASSERT_TRUE(first.ok());
  WireHost second(&server, path);  // Abstract name already taken.
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.PollOnce(0), 0);
}

// ---- Live-socket trace replay (the cross-version gate) ---------------------

void RunRecordedSession(Server* server) {
  xlib::Display a(server, "rec-a");
  a.set_wire_mode(true);
  xlib::Display b(server, "rec-b");
  b.set_wire_mode(true);
  WindowId root = server->RootWindow(0);
  WindowId wa = a.CreateWindow(root, {4, 4, 50, 30}, 1);
  a.MapWindow(wa);
  a.SetStringProperty(wa, "WM_NAME", "socket-replay");
  WindowId wb = b.CreateWindow(root, {60, 10, 25, 12});
  b.MapWindow(wb);
  b.MoveWindow(wb, {58, 12});
  (void)a.GetGeometry(wa);
  (void)a.QueryTree(root);
  (void)a.GetStringProperty(wa, "WM_NAME");
  (void)b.InternAtom("WM_PROTOCOLS");
  (void)b.GetWindowAttributes(wb);
  b.DestroyWindow(wb);
  (void)a.QueryTree(root);
}

TEST(TraceReplay, LiveSocketReplayMatchesDirectReplay) {
  Server recorded;
  xproto::TraceRecorder recorder;
  recorded.SetTraceRecorder(&recorder);
  RunRecordedSession(&recorded);
  recorded.SetTraceRecorder(nullptr);
  recorder.RecordExpect(recorded.TotalRequests(), recorded.render_stats().draw_ops,
                        static_cast<uint64_t>(recorded.render_stats().pixels_drawn));
  xproto::Trace trace = recorder.Take();
  ASSERT_FALSE(trace.records.empty());

  Server direct;
  ReplayResult rd = ReplayTrace(&direct, trace);
  ASSERT_TRUE(rd.expectations_met) << rd.mismatch;

  // Same trace, but every traced client rides the full out-of-process path:
  // listener accept, epoll readiness, framed reads, flushed replies.
  ReplayOptions socket_options;
  socket_options.listen_socket = UniqueSocketPath("replay");
  Server via_socket;
  ReplayResult rs = ReplayTrace(&via_socket, trace, socket_options);

  EXPECT_TRUE(rs.expectations_met) << rs.mismatch;
  EXPECT_EQ(rs.parse_errors, 0u);
  EXPECT_EQ(rs.requests_dispatched, rd.requests_dispatched);
  EXPECT_TRUE(rs.replies_match) << rs.reply_mismatch;
  EXPECT_GT(rs.recorded_replies, 0u) << "the session must exercise replies";
  EXPECT_EQ(FingerprintServer(via_socket), FingerprintServer(direct));
  EXPECT_EQ(FingerprintServer(via_socket), FingerprintServer(recorded));
}

}  // namespace
}  // namespace xserver
