#include "src/xtb/bindings.h"

#include <gtest/gtest.h>

#include "src/base/logging.h"

namespace xtb {
namespace {

TEST(KeySymTest, InternIsStable) {
  xproto::KeySym up = InternKeySym("Up");
  EXPECT_EQ(InternKeySym("Up"), up);
  EXPECT_NE(InternKeySym("Down"), up);
  EXPECT_EQ(KeySymName(up), "Up");
  EXPECT_EQ(KeySymName(0), "");
}

TEST(ParseBindingLineTest, SimpleButton) {
  auto binding = ParseBindingLine("<Btn1> : f.raise");
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->event.kind, EventKind::kButtonPress);
  EXPECT_EQ(binding->event.button, 1);
  EXPECT_EQ(binding->event.modifiers, 0u);
  ASSERT_EQ(binding->functions.size(), 1u);
  EXPECT_EQ(binding->functions[0].name, "f.raise");
  EXPECT_TRUE(binding->functions[0].args.empty());
}

TEST(ParseBindingLineTest, MultipleFunctionsPerBinding) {
  // Paper: "<Btn2> : f.save f.zoom".
  auto binding = ParseBindingLine("<Btn2> : f.save f.zoom");
  ASSERT_TRUE(binding.has_value());
  ASSERT_EQ(binding->functions.size(), 2u);
  EXPECT_EQ(binding->functions[0].name, "f.save");
  EXPECT_EQ(binding->functions[1].name, "f.zoom");
}

TEST(ParseBindingLineTest, KeyWithDetailAndArg) {
  // Paper: "<Key>Up : f.warpVertical(-50)".
  auto binding = ParseBindingLine("<Key>Up : f.warpVertical(-50)");
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->event.kind, EventKind::kKeyPress);
  EXPECT_EQ(binding->event.keysym, InternKeySym("Up"));
  ASSERT_EQ(binding->functions.size(), 1u);
  EXPECT_EQ(binding->functions[0].name, "f.warpVertical");
  ASSERT_EQ(binding->functions[0].args.size(), 1u);
  EXPECT_EQ(binding->functions[0].args[0], "-50");
}

TEST(ParseBindingLineTest, Modifiers) {
  auto binding = ParseBindingLine("Shift Ctrl<Btn3> : f.lower");
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->event.modifiers,
            static_cast<uint32_t>(xproto::ModifierMask::kShift) |
                static_cast<uint32_t>(xproto::ModifierMask::kControl));
  auto meta = ParseBindingLine("Meta<Btn1> : f.raise");
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->event.modifiers, static_cast<uint32_t>(xproto::ModifierMask::kMod1));
}

TEST(ParseBindingLineTest, ButtonReleaseAndDown) {
  auto up = ParseBindingLine("<Btn1Up> : f.raise");
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->event.kind, EventKind::kButtonRelease);
  auto down = ParseBindingLine("<Btn2Down> : f.move");
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->event.kind, EventKind::kButtonPress);
  EXPECT_EQ(down->event.button, 2);
}

TEST(ParseBindingLineTest, EnterLeaveMotion) {
  EXPECT_EQ(ParseBindingLine("<Enter> : f.raise")->event.kind, EventKind::kEnter);
  EXPECT_EQ(ParseBindingLine("<Leave> : f.lower")->event.kind, EventKind::kLeave);
  EXPECT_EQ(ParseBindingLine("<Motion> : f.nop")->event.kind, EventKind::kMotion);
}

TEST(ParseBindingLineTest, InvocationModeArguments) {
  // All five invocation modes of §4.4.1 parse as arguments.
  const char* cases[] = {"f.iconify", "f.iconify(multiple)", "f.iconify(blob)",
                         "f.iconify(#$)", "f.iconify(#0x1234)"};
  for (const char* text : cases) {
    auto binding = ParseBindingLine(std::string("<Btn1> : ") + text);
    ASSERT_TRUE(binding.has_value()) << text;
    EXPECT_EQ(binding->functions[0].ToString(), text);
  }
}

TEST(ParseBindingLineTest, MultipleArgs) {
  auto binding = ParseBindingLine("<Btn1> : f.panTo(100, 200)");
  ASSERT_TRUE(binding.has_value());
  ASSERT_EQ(binding->functions[0].args.size(), 2u);
  EXPECT_EQ(binding->functions[0].args[0], "100");
  EXPECT_EQ(binding->functions[0].args[1], "200");
}

TEST(ParseBindingLineTest, Malformed) {
  EXPECT_FALSE(ParseBindingLine("no colon here").has_value());
  EXPECT_FALSE(ParseBindingLine("<Btn9> : f.raise").has_value());
  EXPECT_FALSE(ParseBindingLine("<Btn1> : raise").has_value());       // Missing f. prefix.
  EXPECT_FALSE(ParseBindingLine("<Btn1> : f.raise(unclosed").has_value());
  EXPECT_FALSE(ParseBindingLine("<Key> : f.raise").has_value());      // Key needs detail.
  EXPECT_FALSE(ParseBindingLine("Bogus<Btn1> : f.raise").has_value());
  EXPECT_FALSE(ParseBindingLine("<Btn1>stuff : f.raise").has_value());
  EXPECT_FALSE(ParseBindingLine("<Btn1> :").has_value());             // No functions.
}

TEST(ParseBindingsTest, PaperExampleBlock) {
  ParseResult result = ParseBindings(
      "<Btn1> : f.raise\n"
      "<Btn2> : f.save f.zoom\n"
      "<Key>Up : f.warpVertical(-50)\n");
  EXPECT_EQ(result.errors, 0);
  ASSERT_EQ(result.bindings.size(), 3u);
  EXPECT_EQ(result.bindings[2].functions[0].args[0], "-50");
}

TEST(ParseBindingsTest, SkipsBadLinesKeepsGood) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  ParseResult result = ParseBindings(
      "<Btn1> : f.raise\n"
      "garbage\n"
      "<Btn2> : f.lower\n");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  EXPECT_EQ(result.errors, 1);
  EXPECT_EQ(result.bindings.size(), 2u);
}

TEST(ParseFunctionListTest, StandaloneFunctionList) {
  auto functions = ParseFunctionList("f.save f.zoom f.warpVertical(-50)");
  ASSERT_TRUE(functions.has_value());
  EXPECT_EQ(functions->size(), 3u);
  EXPECT_FALSE(ParseFunctionList("").has_value());
  EXPECT_FALSE(ParseFunctionList("notafunction").has_value());
}

class BindingRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(BindingRoundTrip, FormatParsesBack) {
  auto binding = ParseBindingLine(GetParam());
  ASSERT_TRUE(binding.has_value());
  auto reparsed = ParseBindingLine(binding->ToString());
  ASSERT_TRUE(reparsed.has_value()) << binding->ToString();
  EXPECT_EQ(*reparsed, *binding);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BindingRoundTrip,
    ::testing::Values("<Btn1> : f.raise", "<Btn2> : f.save f.zoom",
                      "<Key>Up : f.warpVertical(-50)", "Shift<Btn3> : f.iconify(#$)",
                      "Ctrl Meta<Btn2Up> : f.menu(windowMenu)",
                      "<Enter> : f.setButtonLabel(hot)",
                      "<Btn5> : f.iconify(#0x1234) f.lower"));

TEST(FormatBindingsTest, MultiLine) {
  ParseResult result = ParseBindings("<Btn1> : f.raise\n<Btn2> : f.lower\n");
  std::string formatted = FormatBindings(result.bindings);
  ParseResult reparsed = ParseBindings(formatted);
  EXPECT_EQ(reparsed.bindings, result.bindings);
}

}  // namespace
}  // namespace xtb
