// Duplex transport tests (docs/PROTOCOL.md, "Connection lifecycle"):
// frame reassembly across arbitrary short reads, the socketpair round trip
// (request bytes in, reply/error/event frames out), connection lifecycle
// states and close reasons, backpressure charging the misbehavior ledger,
// and the kill-a-client-mid-request teardown guarantees — the dead client's
// windows are swept, every other client's sequence space is untouched.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/swm/quarantine.h"
#include "src/xlib/display.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/connection.h"
#include "src/xserver/server.h"

namespace xserver {
namespace {

using xproto::ByteChannel;
using xproto::ChannelPair;
using xproto::FrameReassembler;
using xproto::FrameStream;
using xproto::IoStatus;
using xproto::MakePipePair;
using xproto::MakeSocketPair;
using xproto::Reply;
using xproto::Request;
using xproto::WireClientEndpoint;
using xproto::WindowId;

std::vector<uint8_t> EncodeAll(const std::vector<Request>& requests) {
  xproto::WireWriter w;
  for (const Request& r : requests) {
    xproto::EncodeRequest(r, &w);
  }
  return w.Take();
}

// ---- Frame reassembly -------------------------------------------------------

TEST(FrameReassembler, ReassemblesRequestStreamFedByteByByte) {
  std::vector<Request> sent = {
      xproto::CreateWindowRequest{.parent = 1, .geometry = {0, 0, 100, 80}},
      xproto::MapWindowRequest{.window = 7},
      xproto::InternAtomRequest{.name = "WM_CLASS"},
      xproto::GetGeometryRequest{.window = 7},
  };
  std::vector<uint8_t> stream = EncodeAll(sent);

  FrameReassembler reasm(FrameStream::kRequests);
  std::vector<std::vector<uint8_t>> frames;
  for (uint8_t byte : stream) {
    ASSERT_TRUE(reasm.Feed({&byte, 1}));
    while (std::optional<std::vector<uint8_t>> frame = reasm.NextFrame()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), sent.size());
  size_t offset = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    // Each extracted frame is byte-identical to its slice of the stream.
    ASSERT_EQ(frames[i],
              std::vector<uint8_t>(stream.begin() + static_cast<ptrdiff_t>(offset),
                                   stream.begin() + static_cast<ptrdiff_t>(offset) +
                                       static_cast<ptrdiff_t>(frames[i].size())));
    Request decoded;
    xproto::ParseError error;
    ASSERT_GT(xproto::DecodeRequest(frames[i], &decoded, &error), 0u);
    EXPECT_TRUE(decoded == sent[i]);
    offset += frames[i].size();
  }
  EXPECT_EQ(offset, stream.size());
  EXPECT_EQ(reasm.buffered_bytes(), 0u);
}

TEST(FrameReassembler, ReassemblesServerStreamAcrossSplits) {
  // Server→client stream: an error frame, a reply frame, an event frame.
  xproto::WireWriter w;
  xproto::EncodeError({.code = xproto::ErrorCode::kBadWindow,
                       .request = xproto::RequestCode::kMapWindow,
                       .resource_id = 9,
                       .sequence = 3},
                      &w);
  xproto::EncodeReply(xproto::AtomReply{.atom = 17}, 4, &w);
  xproto::EncodeEvent(xproto::MapNotifyEvent{.event_window = 5, .window = 5}, 5, &w);
  std::vector<uint8_t> stream = w.Take();

  // Feed in awkward splits: 1, 7, 31, rest.
  FrameReassembler reasm(FrameStream::kServerToClient);
  size_t cuts[] = {1, 7, 31, stream.size()};
  size_t prev = 0;
  std::vector<std::vector<uint8_t>> frames;
  for (size_t cut : cuts) {
    ASSERT_TRUE(reasm.Feed(std::span(stream.data() + prev, cut - prev)));
    while (std::optional<std::vector<uint8_t>> frame = reasm.NextFrame()) {
      frames.push_back(std::move(*frame));
    }
    prev = cut;
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0][0], 0);  // Error.
  EXPECT_EQ(frames[1][0], 1);  // Reply.
  EXPECT_GE(frames[2][0], 2);  // Event.
}

TEST(FrameReassembler, LengthLieSurrendersHeaderInsteadOfHanging) {
  // A request frame whose length field says zero would never complete; the
  // reassembler must surrender the header so the decoder can reject it.
  std::vector<uint8_t> lie = {8, 0, 0, 0, 1, 0, 0, 0};
  FrameReassembler reasm(FrameStream::kRequests);
  ASSERT_TRUE(reasm.Feed(lie));
  std::optional<std::vector<uint8_t>> frame = reasm.NextFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 4u);
  Request decoded;
  xproto::ParseError error;
  EXPECT_EQ(xproto::DecodeRequest(*frame, &decoded, &error), 0u);
}

TEST(FrameReassembler, UnboundedPartialFrameTripsOverflow) {
  // A frame header claiming kMaxRequestBytes, then endless filler that never
  // completes it within the buffer cap.
  FrameReassembler reasm(FrameStream::kRequests, /*buffer_cap=*/256);
  std::vector<uint8_t> head = {10, 0,
                               static_cast<uint8_t>((xproto::kMaxRequestBytes / 4) & 0xFF),
                               static_cast<uint8_t>((xproto::kMaxRequestBytes / 4) >> 8)};
  ASSERT_TRUE(reasm.Feed(head));
  std::vector<uint8_t> filler(512, 0xAA);
  EXPECT_FALSE(reasm.Feed(filler));
  EXPECT_TRUE(reasm.overflowed());
}

// ---- Byte channels ----------------------------------------------------------

void RoundTripBytesThrough(ChannelPair pair) {
  ASSERT_NE(pair.client, nullptr);
  ASSERT_NE(pair.server, nullptr);
  std::vector<uint8_t> payload(1000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  size_t written = 0;
  ASSERT_EQ(pair.client->Write(payload, &written), IoStatus::kOk);
  ASSERT_EQ(written, payload.size());
  std::vector<uint8_t> got;
  uint8_t buf[256];
  while (got.size() < payload.size()) {
    size_t n = 0;
    IoStatus s = pair.server->Read(buf, sizeof(buf), &n);
    ASSERT_NE(s, IoStatus::kError);
    got.insert(got.end(), buf, buf + n);
    if (s == IoStatus::kWouldBlock && n == 0) {
      break;
    }
  }
  EXPECT_EQ(got, payload);
  // Close the client end: the server end sees EOF.
  pair.client->Close();
  size_t n = 0;
  EXPECT_EQ(pair.server->Read(buf, sizeof(buf), &n), IoStatus::kClosed);
}

TEST(ByteChannel, SocketPairRoundTripAndEof) { RoundTripBytesThrough(MakeSocketPair()); }

TEST(ByteChannel, PipePairRoundTripAndEof) { RoundTripBytesThrough(MakePipePair()); }

// ---- Connection round trip --------------------------------------------------

// Moves bytes both ways until the pair goes quiescent.
void PumpPair(Connection* conn, WireClientEndpoint* ep, int spins = 16) {
  for (int i = 0; i < spins; ++i) {
    ep->Flush();
    conn->Pump();
    ep->Poll();
    if (ep->queued_bytes() == 0 && conn->outbound_queued() == 0) {
      return;
    }
  }
}

TEST(Connection, QueryRoundTripOverSocketpair) {
  Server server;
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server), "remote-host");
  WireClientEndpoint ep(std::move(pair.client));

  conn.Establish();
  EXPECT_EQ(conn.state(), ConnectionState::kEstablished);
  ASSERT_NE(conn.client(), 0u);

  // Create + map a window, then query it back — all in bytes.
  ep.QueueRequest(xproto::CreateWindowRequest{.parent = server.RootWindow(0),
                                              .geometry = {10, 20, 300, 200},
                                              .border_width = 2});
  PumpPair(&conn, &ep);
  // CreateWindow has no reply; learn the id via QueryTree on the root.
  ep.QueueRequest(xproto::QueryTreeRequest{.window = server.RootWindow(0)});
  PumpPair(&conn, &ep);
  Reply reply;
  xproto::ParseError error;
  ASSERT_TRUE(ep.NextReply(&reply, &error)) << xproto::ParseErrorText(error);
  const auto* tree = std::get_if<xproto::TreeReply>(&reply);
  ASSERT_NE(tree, nullptr);
  ASSERT_EQ(tree->children.size(), 1u);
  WindowId window = tree->children[0];

  ep.QueueRequest(xproto::GetGeometryRequest{.window = window});
  PumpPair(&conn, &ep);
  uint16_t sequence = 0;
  ASSERT_TRUE(ep.NextReply(&reply, &error, &sequence));
  const auto* geo = std::get_if<xproto::GeometryReply>(&reply);
  ASSERT_NE(geo, nullptr);
  EXPECT_EQ(geo->geometry, (xbase::Rect{10, 20, 300, 200}));
  EXPECT_EQ(geo->border_width, 2);
  // Queries occupy sequence slots like any other request.
  EXPECT_EQ(sequence, server.SequenceNumber(conn.client()));

  EXPECT_GT(conn.stats().replies_queued, 0u);
  EXPECT_EQ(conn.stats().parse_errors, 0u);

  conn.BeginDrain();
  PumpPair(&conn, &ep);
  conn.Pump();
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kGracefulDrain);
}

TEST(Connection, ErrorsTravelTheWire) {
  Server server;
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server));
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();

  ep.QueueRequest(xproto::MapWindowRequest{.window = 0xDEAD});
  PumpPair(&conn, &ep);
  std::optional<std::vector<uint8_t>> frame = ep.NextFrame();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ((*frame)[0], 0) << "error frames start with a zero byte";
  xproto::XError xerr;
  xproto::ParseError perr;
  ASSERT_GT(xproto::DecodeError(*frame, &xerr, &perr), 0u);
  EXPECT_EQ(xerr.code, xproto::ErrorCode::kBadWindow);
  EXPECT_EQ(xerr.resource_id, 0xDEADu);
  EXPECT_EQ(conn.stats().errors_queued, 1u);
}

TEST(Connection, EventsTravelTheWire) {
  Server server;
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server));
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();

  // Create a window and select PropertyChange on it, all over the wire.
  ep.QueueRequest(xproto::CreateWindowRequest{.parent = server.RootWindow(0),
                                              .geometry = {0, 0, 50, 50}});
  ep.QueueRequest(xproto::QueryTreeRequest{.window = server.RootWindow(0)});
  PumpPair(&conn, &ep);
  Reply reply;
  xproto::ParseError error;
  ASSERT_TRUE(ep.NextReply(&reply, &error));
  WindowId window = std::get<xproto::TreeReply>(reply).children.at(0);
  ep.QueueRequest(
      xproto::SelectInputRequest{.window = window, .event_mask = xproto::kPropertyChangeMask});
  PumpPair(&conn, &ep);

  // A direct client touches a property; the event reaches us as a frame.
  xlib::Display other(&server, "localhost");
  ASSERT_TRUE(other.SetStringProperty(window, "WM_NAME", "hello"));
  PumpPair(&conn, &ep);

  bool saw_property_notify = false;
  while (std::optional<std::vector<uint8_t>> frame = ep.NextFrame()) {
    if ((*frame)[0] < 2) {
      continue;
    }
    xproto::Event event;
    uint16_t seq = 0;
    ASSERT_GT(xproto::DecodeEvent(*frame, &event, &error, &seq), 0u)
        << xproto::ParseErrorText(error);
    if (const auto* pn = std::get_if<xproto::PropertyNotifyEvent>(&event)) {
      EXPECT_EQ(pn->window, window);
      saw_property_notify = true;
    }
  }
  EXPECT_TRUE(saw_property_notify);
  EXPECT_GT(conn.stats().events_queued, 0u);
}

TEST(Connection, ProtocolErrorClosesAndChargesLedger) {
  Server server;
  swm::MisbehaviorLedger ledger;
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server));
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();
  conn.SetMisbehaviorHook(
      [&ledger](xproto::ClientId client, int cost) { ledger.Charge(client, cost); });

  std::vector<uint8_t> garbage = {99, 0, 2, 0, 1, 2, 3, 4};  // Unknown opcode.
  ep.QueueBytes(garbage);
  PumpPair(&conn, &ep);
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kProtocolError);
  EXPECT_GT(conn.stats().parse_errors, 0u);
  // The X error for the rejected frame was flushed before teardown.
  ep.Poll();
  std::optional<std::vector<uint8_t>> frame = ep.NextFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], 0);
}

TEST(Connection, WriteStallChargesLedgerAndCloses) {
  Server server;
  swm::QuarantinePolicy policy;
  policy.budget = 24;  // Two charges at cost 12 quarantine the client.
  swm::MisbehaviorLedger ledger(policy);

  // Tiny kernel buffers + tiny high-water mark so backpressure is immediate.
  ChannelPair pair = MakeSocketPair(/*buffer_bytes=*/2048);
  ConnectionLimits limits;
  limits.write_queue_high_water = 512;
  limits.stall_pump_limit = 3;
  Connection conn(&server, std::move(pair.server), "stalled-peer", limits);
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();
  bool quarantined = false;
  conn.SetMisbehaviorHook([&](xproto::ClientId client, int cost) {
    quarantined = ledger.Charge(client, cost) || quarantined;
  });

  // Pile up a large property, then query it repeatedly without ever reading
  // the replies: the kernel buffer fills, the outbound queue pins over the
  // high-water mark, and the peer is declared stalled.
  ep.QueueRequest(xproto::CreateWindowRequest{.parent = server.RootWindow(0),
                                              .geometry = {0, 0, 10, 10}});
  ep.QueueRequest(xproto::QueryTreeRequest{.window = server.RootWindow(0)});
  ep.Flush();
  conn.Pump();
  xproto::ClientId client = conn.client();
  WindowId window = server.QueryTree(server.RootWindow(0))->children.at(0);
  xproto::AtomId prop = server.InternAtom("BIG");
  std::vector<uint8_t> big(4096, 0x5A);
  server.ChangeProperty(client, window, prop, server.InternAtom("STRING"), 8,
                        PropMode::kReplace, big);

  for (int i = 0; i < 32 && conn.state() != ConnectionState::kClosed; ++i) {
    ep.QueueRequest(xproto::GetPropertyRequest{.window = window, .property = prop});
    ep.Flush();
    conn.Pump();  // Client never Polls: replies have nowhere to go.
  }
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kWriteStalled);
  EXPECT_TRUE(quarantined);
  EXPECT_TRUE(ledger.IsQuarantined(client));
  EXPECT_GT(conn.stats().write_queue_peak, limits.write_queue_high_water);
}

TEST(Connection, ReadIdleDeadlineClosesQuietPeer) {
  Server server;
  ChannelPair pair = MakeSocketPair();
  ConnectionLimits limits;
  limits.read_idle_limit = 5;
  Connection conn(&server, std::move(pair.server), "quiet-peer", limits);
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();
  int charges = 0;
  conn.SetMisbehaviorHook([&](xproto::ClientId, int) { ++charges; });
  for (int i = 0; i < 8 && conn.state() != ConnectionState::kClosed; ++i) {
    conn.Pump();
  }
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kReadIdle);
  EXPECT_EQ(charges, 1);
}

// The acceptance-critical teardown test: a client killed mid-request frame.
TEST(Connection, KillClientMidRequestSweepsWindowsAndSparesOthers) {
  Server server;

  // The survivor: a direct-call client with a window and a sequence history.
  xlib::Display survivor(&server, "survivor");
  WindowId survivor_win =
      survivor.CreateWindow(server.RootWindow(0), {0, 0, 64, 64});
  ASSERT_TRUE(survivor.MapWindow(survivor_win));
  uint64_t survivor_seq = survivor.RequestCount();
  uint64_t survivor_errors = survivor.ErrorCount();

  // The victim: a framed connection that dies halfway through a request.
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server), "victim");
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();
  xproto::ClientId victim = conn.client();

  ep.QueueRequest(xproto::CreateWindowRequest{.parent = server.RootWindow(0),
                                              .geometry = {5, 5, 40, 40}});
  PumpPair(&conn, &ep);
  ASSERT_EQ(server.QueryTree(server.RootWindow(0))->children.size(), 2u);
  WindowId victim_win = server.QueryTree(server.RootWindow(0))->children.back();
  ASSERT_NE(victim_win, survivor_win);

  // Queue a full MapWindow plus a CreateWindow that will be cut mid-frame.
  ep.QueueRequest(xproto::MapWindowRequest{.window = victim_win});
  ep.QueueRequest(xproto::CreateWindowRequest{.parent = server.RootWindow(0),
                                              .geometry = {1, 1, 10, 10}});
  ep.CloseMidFrame();
  for (int i = 0; i < 8 && conn.state() != ConnectionState::kClosed; ++i) {
    conn.Pump();
  }
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kPeerClosed);

  // The victim's windows are gone; the torn frame was never dispatched.
  EXPECT_FALSE(server.WindowExists(victim_win));
  EXPECT_FALSE(server.HasClient(victim));
  ASSERT_EQ(server.QueryTree(server.RootWindow(0))->children.size(), 1u);

  // The survivor is untouched: window intact, sequence space unperturbed,
  // no stray errors, and new requests keep working.
  EXPECT_TRUE(server.WindowExists(survivor_win));
  EXPECT_EQ(survivor.RequestCount(), survivor_seq);
  EXPECT_EQ(survivor.ErrorCount(), survivor_errors);
  ASSERT_TRUE(survivor.MoveWindow(survivor_win, {3, 4}));
  EXPECT_EQ(survivor.RequestCount(), survivor_seq + 1);
  EXPECT_EQ(survivor.GetGeometry(survivor_win)->x, 3);
}

// ---- Dead-peer writes ------------------------------------------------------

// A peer that stops *receiving* (SHUT_RD) without closing its write side is
// only discoverable on the write path: the reply flush hits EPIPE.  That is
// a transport error on an established connection — not a crash, not a
// busy-loop, and (because SIGPIPE is suppressed) not process death.
TEST(Connection, EpipeOnReplyFlushClosesWithTransportError) {
  Server server;
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server), "dead-reader");
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();

  // The request reaches the server-side buffer before the receive side is
  // shut down; only the reply direction is broken.
  ep.QueueRequest(xproto::GetGeometryRequest{.window = server.RootWindow(0)});
  ep.Flush();
  ASSERT_EQ(::shutdown(ep.PollFd(), SHUT_RD), 0);

  for (int i = 0; i < 8 && conn.state() != ConnectionState::kClosed; ++i) {
    conn.Pump();
  }
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kTransportError)
      << "a write-side death discovery is a transport error, not an EOF";
  EXPECT_GT(conn.stats().requests_dispatched, 0u)
      << "the request itself was intact and must have been dispatched";
  // Surviving to this line IS the SIGPIPE regression test: the EPIPE write
  // above would have killed the process under the default disposition.
  struct sigaction current;
  ASSERT_EQ(::sigaction(SIGPIPE, nullptr, &current), 0);
  EXPECT_EQ(current.sa_handler, SIG_IGN)
      << "transport channel creation must suppress SIGPIPE process-wide";
}

// Same discovery, mid-drain: EOF was already read (so the close reason is
// the drain's kPeerClosed), and the undeliverable replies are discarded
// without spinning on the dead socket.
TEST(Connection, EpipeDuringDrainKeepsPeerClosedReason) {
  Server server;
  ChannelPair pair = MakeSocketPair();
  Connection conn(&server, std::move(pair.server), "dying-reader");
  WireClientEndpoint ep(std::move(pair.client));
  conn.Establish();

  ep.QueueRequest(xproto::GetGeometryRequest{.window = server.RootWindow(0)});
  ep.Flush();
  // Full close: the server reads EOF and drains, but the queued reply can
  // no longer be delivered.
  ep.Close();
  uint64_t pumps_before = conn.stats().pumps;
  for (int i = 0; i < 8 && conn.state() != ConnectionState::kClosed; ++i) {
    conn.Pump();
  }
  EXPECT_EQ(conn.state(), ConnectionState::kClosed);
  EXPECT_EQ(conn.close_reason(), CloseReason::kPeerClosed);
  EXPECT_LE(conn.stats().pumps - pumps_before, 8u) << "no busy-loop on EPIPE";
  // Closed is terminal: further pumps are cheap no-ops.
  EXPECT_EQ(conn.Pump(), ConnectionState::kClosed);
}

// ---- Display duplex equivalence --------------------------------------------

// Every query a wire-mode Display answers over the reply codec must agree
// with the direct-call answer, with zero wire fallbacks along the way.
TEST(DisplayDuplex, WireModeQueriesMatchDirectCalls) {
  Server server;
  xlib::Display direct(&server, "direct");
  xlib::Display wired(&server, "wired");
  wired.set_wire_mode(true);

  WindowId parent = wired.CreateWindow(server.RootWindow(0), {10, 10, 200, 150}, 3);
  ASSERT_NE(parent, xproto::kNone);
  WindowId child = wired.CreateWindow(parent, {20, 30, 50, 40});
  ASSERT_NE(child, xproto::kNone);
  ASSERT_TRUE(wired.MapWindow(parent));
  ASSERT_TRUE(wired.MapWindow(child));
  ASSERT_TRUE(wired.SetStringProperty(parent, "WM_NAME", "duplex"));

  EXPECT_EQ(wired.GetGeometry(parent), direct.GetGeometry(parent));
  EXPECT_EQ(wired.GetGeometry(child), direct.GetGeometry(child));

  auto wired_attrs = wired.GetWindowAttributes(parent);
  auto direct_attrs = direct.GetWindowAttributes(parent);
  ASSERT_TRUE(wired_attrs.has_value());
  ASSERT_TRUE(direct_attrs.has_value());
  EXPECT_EQ(wired_attrs->map_state, direct_attrs->map_state);
  EXPECT_EQ(wired_attrs->border_width, direct_attrs->border_width);
  EXPECT_EQ(wired_attrs->all_event_masks, direct_attrs->all_event_masks);

  auto wired_tree = wired.QueryTree(parent);
  auto direct_tree = direct.QueryTree(parent);
  ASSERT_TRUE(wired_tree.has_value());
  ASSERT_TRUE(direct_tree.has_value());
  EXPECT_EQ(wired_tree->root, direct_tree->root);
  EXPECT_EQ(wired_tree->parent, direct_tree->parent);
  EXPECT_EQ(wired_tree->children, direct_tree->children);

  EXPECT_EQ(wired.TranslateCoordinates(child, server.RootWindow(0), {0, 0}),
            direct.TranslateCoordinates(child, server.RootWindow(0), {0, 0}));

  EXPECT_EQ(wired.InternAtom("WM_NAME"), direct.InternAtom("WM_NAME"));
  EXPECT_EQ(wired.GetAtomName(wired.InternAtom("WM_NAME")),
            direct.GetAtomName(direct.InternAtom("WM_NAME")));
  EXPECT_EQ(wired.GetStringProperty(parent, "WM_NAME"),
            direct.GetStringProperty(parent, "WM_NAME"));
  EXPECT_EQ(wired.GetStringProperty(parent, "MISSING"), std::nullopt);

  // Missing-resource queries agree too (and raise the same error kind).
  EXPECT_EQ(wired.GetGeometry(0xBAD), std::nullopt);
  EXPECT_EQ(direct.GetGeometry(0xBAD), std::nullopt);

  // The whole suite ran on the wire: replies decoded, nothing fell back.
  const xlib::Display::WireStats& stats = wired.wire_stats();
  EXPECT_GT(stats.wire_replies, 0u);
  EXPECT_EQ(stats.wire_fallbacks, 0u) << "a duplex query fell back to a direct call";
  EXPECT_EQ(stats.reply_parse_errors, 0u);
}

TEST(DisplayDuplex, FallbacksAreCountedForUnwiredCalls) {
  Server server;
  xlib::Display wired(&server, "wired");
  wired.set_wire_mode(true);
  (void)wired.GetInputFocus();
  (void)wired.QueryPointer();
  EXPECT_EQ(wired.wire_stats().wire_fallbacks, 2u);
}

}  // namespace
}  // namespace xserver
