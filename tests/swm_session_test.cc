// Session management (paper §7): swmhints, the restart table, f.places and
// full save/restart round trips including remote clients.
#include "src/swm/session.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/xlib/icccm.h"
#include "src/xserver/faults.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;
using swm::RestartTable;
using swm::SwmHintsRecord;

TEST(SwmHintsRecordTest, EncodeMatchesPaperShape) {
  // The paper's §7 example line:
  //   swmhints -geometry 120x120+1010+359 -icongeometry +0+0
  //            -state NormalState -cmd "oclock -geom 100x100"
  SwmHintsRecord record;
  record.geometry = {1010, 359, 120, 120};
  record.icon_position = xbase::Point{0, 0};
  record.state = xproto::WmState::kNormal;
  record.command = "oclock -geom 100x100";
  std::string encoded = record.Encode();
  EXPECT_NE(encoded.find("swmhints -geometry 120x120+1010+359"), std::string::npos);
  EXPECT_NE(encoded.find("-icongeometry +0+0"), std::string::npos);
  EXPECT_NE(encoded.find("-state NormalState"), std::string::npos);
  EXPECT_NE(encoded.find("-cmd \"oclock -geom 100x100\""), std::string::npos);
}

TEST(SwmHintsRecordTest, ParsePaperExample) {
  auto record = SwmHintsRecord::Parse(
      "swmhints -geometry 120x120+1010+359 -icongeometry +0+0 "
      "-state NormalState -cmd \"oclock -geom 100x100\"");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->geometry, (xbase::Rect{1010, 359, 120, 120}));
  EXPECT_EQ(record->icon_position, (xbase::Point{0, 0}));
  EXPECT_EQ(record->state, xproto::WmState::kNormal);
  EXPECT_EQ(record->command, "oclock -geom 100x100");
  EXPECT_TRUE(record->machine.empty());
  EXPECT_FALSE(record->sticky);
}

TEST(SwmHintsRecordTest, RoundTripAllFields) {
  SwmHintsRecord record;
  record.geometry = {5, 6, 70, 80};
  record.icon_position = xbase::Point{12, 34};
  record.state = xproto::WmState::kIconic;
  record.sticky = true;
  record.icon_on_root = false;
  record.command = "xterm -e vi notes.txt";
  record.machine = "farhost";
  auto reparsed = SwmHintsRecord::Parse(record.Encode());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, record);
}

TEST(SwmHintsRecordTest, MalformedRejected) {
  EXPECT_FALSE(SwmHintsRecord::Parse("").has_value());
  EXPECT_FALSE(SwmHintsRecord::Parse("notswmhints -geometry 1x1+0+0").has_value());
  // Missing mandatory flags.
  EXPECT_FALSE(SwmHintsRecord::Parse("swmhints -cmd foo").has_value());
  EXPECT_FALSE(SwmHintsRecord::Parse("swmhints -geometry 1x1+0+0").has_value());
  EXPECT_FALSE(
      SwmHintsRecord::Parse("swmhints -geometry bogus -cmd foo").has_value());
  EXPECT_FALSE(
      SwmHintsRecord::Parse("swmhints -geometry 1x1+0+0 -state Weird -cmd x").has_value());
  EXPECT_FALSE(SwmHintsRecord::Parse("swmhints -geometry 1x1+0+0 -cmd").has_value());
}

TEST(RestartTableTest, MatchConsumesFirst) {
  RestartTable table;
  SwmHintsRecord a;
  a.geometry = {0, 0, 10, 10};
  a.command = "oclock";
  table.Add(a);
  EXPECT_EQ(table.size(), 1u);
  auto match = table.MatchAndConsume("oclock", "localhost");
  ASSERT_TRUE(match.has_value());
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.MatchAndConsume("oclock", "localhost").has_value());
}

TEST(RestartTableTest, DuplicateCommandsConsumedInOrder) {
  // "The scheme outlined above breaks down if two windows have identical
  // WM_COMMAND properties" — we consume in order.
  RestartTable table;
  SwmHintsRecord first;
  first.geometry = {1, 1, 10, 10};
  first.command = "xterm";
  SwmHintsRecord second;
  second.geometry = {2, 2, 10, 10};
  second.command = "xterm";
  table.Add(first);
  table.Add(second);
  EXPECT_EQ(table.MatchAndConsume("xterm", "")->geometry.x, 1);
  EXPECT_EQ(table.MatchAndConsume("xterm", "")->geometry.x, 2);
}

TEST(RestartTableTest, MachineMatchingRules) {
  RestartTable table;
  SwmHintsRecord remote;
  remote.geometry = {0, 0, 10, 10};
  remote.command = "xload";
  remote.machine = "serverA";
  table.Add(remote);
  // Wrong machine: no match.
  EXPECT_FALSE(table.MatchAndConsume("xload", "serverB").has_value());
  // Unknown local machine ("" on either side) matches.
  EXPECT_TRUE(table.MatchAndConsume("xload", "serverA").has_value());
}

TEST(RestartTableTest, PropertyTextRoundTrip) {
  RestartTable table;
  for (int i = 0; i < 3; ++i) {
    SwmHintsRecord record;
    record.geometry = {i, i, 10 + i, 10};
    record.command = "client" + std::to_string(i);
    table.Add(record);
  }
  RestartTable reparsed = RestartTable::FromPropertyText(table.ToPropertyText());
  EXPECT_EQ(reparsed.size(), 3u);
  EXPECT_EQ(reparsed.ToPropertyText(), table.ToPropertyText());
}

TEST(RestartTableTest, MalformedLinesSkipped) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  RestartTable table = RestartTable::FromPropertyText(
      "swmhints -geometry 10x10+0+0 -cmd a\n"
      "garbage line\n"
      "swmhints -geometry 10x10+1+1 -cmd b\n");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RemoteStartupTest, TemplateExpansion) {
  EXPECT_EQ(swm::ExpandRemoteStartup("rsh %h 'setenv DISPLAY unix:0; %c'", "farhost",
                                     "xload -geom 80x40"),
            "rsh farhost 'setenv DISPLAY unix:0; xload -geom 80x40'");
  EXPECT_EQ(swm::ExpandRemoteStartup("%%h %h", "m", "c"), "%h m");
  EXPECT_EQ(swm::ExpandRemoteStartup("%x", "m", "c"), "%x");  // Unknown kept.
}

TEST(PlacesFileTest, GenerateAndParse) {
  SwmHintsRecord local;
  local.geometry = {10, 20, 100, 50};
  local.command = "oclock -geom 100x100";
  SwmHintsRecord remote;
  remote.geometry = {30, 40, 80, 24};
  remote.command = "xload";
  remote.machine = "farhost";
  std::string text = swm::GeneratePlacesFile({local, remote}, "rsh %h %c");
  EXPECT_NE(text.find("#!/bin/sh"), std::string::npos);
  EXPECT_NE(text.find("oclock -geom 100x100 &"), std::string::npos);
  EXPECT_NE(text.find("rsh farhost xload &"), std::string::npos);
  EXPECT_NE(text.find("exec swm"), std::string::npos);

  std::vector<SwmHintsRecord> reparsed = swm::ParsePlacesFile(text);
  ASSERT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed[0], local);
  EXPECT_EQ(reparsed[1], remote);
}

// ---- Full WM round trip -----------------------------------------------------------

class SessionTest : public SwmTest {};

TEST_F(SessionTest, PlacesCapturesFullState) {
  StartWm("swm*virtualDesktop: 800x400\nswm*panner: False\nswm*XClock*sticky: True\n");
  auto term = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  auto clock = Spawn("xclock", {"xclock", "XClock"}, {0, 0, 20, 20});
  wm_->MoveFrameTo(Managed(*term), {300, 200});
  wm_->Iconify(Managed(*clock));
  wm_->ProcessEvents();

  std::vector<SwmHintsRecord> records = swm::ParsePlacesFile(wm_->GeneratePlaces());
  ASSERT_EQ(records.size(), 2u);
  const SwmHintsRecord* term_rec = nullptr;
  const SwmHintsRecord* clock_rec = nullptr;
  for (const SwmHintsRecord& record : records) {
    if (record.command == "xterm") {
      term_rec = &record;
    }
    if (record.command == "xclock") {
      clock_rec = &record;
    }
  }
  ASSERT_NE(term_rec, nullptr);
  ASSERT_NE(clock_rec, nullptr);
  EXPECT_EQ(term_rec->geometry.origin(), Managed(*term)->ClientDesktopPosition());
  EXPECT_EQ(term_rec->geometry.size(), (xbase::Size{40, 12}));
  EXPECT_EQ(term_rec->state, xproto::WmState::kNormal);
  EXPECT_EQ(clock_rec->state, xproto::WmState::kIconic);
  EXPECT_TRUE(clock_rec->sticky);
  EXPECT_TRUE(clock_rec->icon_position.has_value());
}

TEST_F(SessionTest, InternalWindowsExcludedFromPlaces) {
  StartWm("swm*virtualDesktop: 800x400\nswm*panner: True\n");
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  std::vector<SwmHintsRecord> records = swm::ParsePlacesFile(wm_->GeneratePlaces());
  EXPECT_EQ(records.size(), 1u);  // The panner does not appear.
}

TEST_F(SessionTest, ClientWithoutCommandSkippedWithWarning) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "anon";
  config.wm_class = {"anon", "Anon"};
  config.command = {};
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  int errors_before = xbase::LogErrorCount();
  std::vector<SwmHintsRecord> records = swm::ParsePlacesFile(wm_->GeneratePlaces());
  EXPECT_GT(xbase::LogErrorCount(), errors_before);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  EXPECT_TRUE(records.empty());
}

TEST_F(SessionTest, FullRestartRoundTrip) {
  // Run a session, save it, "restart X", replay the places file, restart
  // swm and check that every client is restored (size, position, icon
  // position, sticky, iconic state) — the §7 contract.
  StartWm("swm*virtualDesktop: 800x400\nswm*panner: False\n");
  auto term = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  auto clock = Spawn("xclock", {"xclock", "XClock"}, {0, 0, 20, 20});
  wm_->MoveFrameTo(Managed(*term), {321, 123});
  wm_->SetSticky(wm_->FindClient(clock->window()), true);
  wm_->Iconify(wm_->FindClient(clock->window()));
  wm_->ProcessEvents();
  xbase::Point term_desktop = Managed(*term)->ClientDesktopPosition();

  std::vector<SwmHintsRecord> records = swm::ParsePlacesFile(wm_->GeneratePlaces());
  ASSERT_EQ(records.size(), 2u);

  // "Restart X": tear down the WM, clients and server; boot a new server.
  term.reset();
  clock.reset();
  wm_.reset();
  server_ = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 100, false}});

  // The places file runs: each swmhints line seeds the root property...
  xlib::Display seeder(server_.get(), "localhost");
  for (const SwmHintsRecord& record : records) {
    ASSERT_TRUE(swm::AppendSwmHints(&seeder, 0, record));
  }
  // ...then the clients start (same WM_COMMANDs)...
  xlib::ClientAppConfig term_config;
  term_config.name = "xterm";
  term_config.wm_class = {"xterm", "XTerm"};
  term_config.command = {"xterm"};
  term_config.geometry = {0, 0, 30, 8};
  auto new_term = std::make_unique<xlib::ClientApp>(server_.get(), term_config);
  xlib::ClientAppConfig clock_config;
  clock_config.name = "xclock";
  clock_config.wm_class = {"xclock", "XClock"};
  clock_config.command = {"xclock"};
  clock_config.geometry = {0, 0, 10, 10};
  auto new_clock = std::make_unique<xlib::ClientApp>(server_.get(), clock_config);
  // ...and finally swm starts and reads the restart info.
  swm::WindowManager::Options options;
  options.resources = "swm*virtualDesktop: 800x400\nswm*panner: False\n";
  options.template_name = "openlook";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
  ASSERT_TRUE(wm_->Start());
  EXPECT_EQ(wm_->restart_table().size(), 2u);

  new_term->Map();
  new_clock->Map();
  wm_->ProcessEvents();

  ManagedClient* term_client = wm_->FindClient(new_term->window());
  ManagedClient* clock_client = wm_->FindClient(new_clock->window());
  ASSERT_NE(term_client, nullptr);
  ASSERT_NE(clock_client, nullptr);
  EXPECT_TRUE(term_client->restored_from_session);
  // Size and position restored (not the 30x8 the client asked for).
  EXPECT_EQ(server_->GetGeometry(new_term->window())->size(), (xbase::Size{40, 12}));
  EXPECT_EQ(term_client->ClientDesktopPosition(), term_desktop);
  // Sticky + iconic state restored.
  EXPECT_TRUE(clock_client->sticky);
  EXPECT_EQ(clock_client->state, xproto::WmState::kIconic);
  // The restart table is consumed.
  EXPECT_TRUE(wm_->restart_table().empty());
  // The root property was cleared at startup.
  EXPECT_FALSE(seeder.GetStringProperty(seeder.RootWindow(0), "SWM_RESTART_INFO")
                   .has_value());
}

TEST_F(SessionTest, RestartMatchesRemoteClientByMachine) {
  // §7.1: remote clients restart with WM_CLIENT_MACHINE matching.
  server_ = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 100, false}});
  xlib::Display seeder(server_.get(), "localhost");
  SwmHintsRecord remote;
  remote.geometry = {60, 30, 25, 10};
  remote.command = "xload";
  remote.machine = "serverA";
  swm::AppendSwmHints(&seeder, 0, remote);

  swm::WindowManager::Options options;
  options.template_name = "openlook";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
  ASSERT_TRUE(wm_->Start());

  // A same-command client from the wrong machine does not match.
  xlib::ClientAppConfig wrong;
  wrong.name = "xload";
  wrong.wm_class = {"xload", "XLoad"};
  wrong.command = {"xload"};
  wrong.machine = "serverB";
  wrong.geometry = {0, 0, 10, 5};
  xlib::ClientApp imposter(server_.get(), wrong);
  imposter.Map();
  wm_->ProcessEvents();
  EXPECT_FALSE(wm_->FindClient(imposter.window())->restored_from_session);
  EXPECT_EQ(wm_->restart_table().size(), 1u);

  // The right machine matches and restores geometry.
  xlib::ClientAppConfig right = wrong;
  right.machine = "serverA";
  xlib::ClientApp real(server_.get(), right);
  real.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(real.window());
  EXPECT_TRUE(client->restored_from_session);
  EXPECT_EQ(server_->GetGeometry(real.window())->size(), (xbase::Size{25, 10}));
  EXPECT_EQ(client->ClientDesktopPosition(), (xbase::Point{60, 30}));
}

TEST_F(SessionTest, RemoteStartupTemplateInPlacesOutput) {
  StartWm("swm*remoteStartup: rsh %h 'env DISPLAY=unix:0 %c'\n");
  xlib::ClientAppConfig config;
  config.name = "xload";
  config.wm_class = {"xload", "XLoad"};
  config.command = {"xload"};
  config.machine = "crunch";
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  std::string places = wm_->GeneratePlaces();
  EXPECT_NE(places.find("rsh crunch 'env DISPLAY=unix:0 xload' &"), std::string::npos);
}

// ---- Adversarial SWM_RESTART_INFO input (docs/ROBUSTNESS.md) --------------
// Anyone can append to a root property, so FromPropertyText is a hostile
// input boundary: total text, per-line length and record count are capped,
// garbage lines are skipped, and insane geometry is clamped.

TEST(RestartTableBoundsTest, OversizedTextTruncatedSafely) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  // Far past the 256 KiB cap; every line is valid, so the survivors up to
  // the cap all parse and nothing past it is touched.
  std::string text;
  for (int i = 0; i < 20000; ++i) {
    text += "swmhints -geometry 10x10+1+1 -cmd app" + std::to_string(i) + "\n";
  }
  RestartTable table = RestartTable::FromPropertyText(text);
  EXPECT_GT(table.size(), 0u);
  EXPECT_LE(table.size(), 256u);  // Record cap.
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST(RestartTableBoundsTest, GiantSingleLineSkipped) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::string giant = "swmhints -geometry 10x10+1+1 -cmd " +
                      std::string(100000, 'x');
  RestartTable table = RestartTable::FromPropertyText(
      giant + "\nswmhints -geometry 10x10+2+2 -cmd sane\n");
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.records()[0].command, "sane");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST(RestartTableBoundsTest, InsaneGeometryClamped) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  auto record = SwmHintsRecord::Parse(
      "swmhints -geometry 9999999x0+9999999-9999999 -icongeometry "
      "+9999999-9999999 -cmd evil");
  ASSERT_TRUE(record.has_value());
  EXPECT_LE(record->geometry.width, xproto::kMaxCoordinate);
  EXPECT_GE(record->geometry.height, 1);
  EXPECT_LE(record->geometry.x, xproto::kMaxCoordinate);
  EXPECT_GE(record->geometry.y, -xproto::kMaxCoordinate);
  ASSERT_TRUE(record->icon_position.has_value());
  EXPECT_LE(record->icon_position->x, xproto::kMaxCoordinate);
  EXPECT_GE(record->icon_position->y, -xproto::kMaxCoordinate);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST(RestartTableBoundsTest, SeededGarbageFuzzRoundTrips) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  // Interleave valid records with seeded garbage: every valid record
  // survives, every garbage line is dropped, and re-encoding what survived
  // round-trips exactly.
  xserver::FaultRng rng(0xfeedbeef);
  std::string text;
  std::vector<std::string> expected_commands;
  for (int i = 0; i < 120; ++i) {
    if (rng.Roll(400)) {
      std::string cmd = "app" + std::to_string(i);
      text += "swmhints -geometry " + std::to_string(rng.Range(1, 200)) + "x" +
              std::to_string(rng.Range(1, 100)) + "+" +
              std::to_string(rng.Range(0, 500)) + "+" +
              std::to_string(rng.Range(0, 500)) + " -cmd " + cmd + "\n";
      expected_commands.push_back(cmd);
    } else {
      std::string junk(static_cast<size_t>(rng.Range(0, 80)), ' ');
      for (char& c : junk) {
        c = static_cast<char>(rng.Range(32, 126));
      }
      text += junk + "\n";
    }
  }
  RestartTable table = RestartTable::FromPropertyText(text);
  // Garbage might coincidentally parse only if it starts with "swmhints";
  // random printable junk never does, so the counts match exactly.
  ASSERT_EQ(table.size(), expected_commands.size());
  for (size_t i = 0; i < expected_commands.size(); ++i) {
    EXPECT_EQ(table.records()[i].command, expected_commands[i]);
  }
  RestartTable reparsed = RestartTable::FromPropertyText(table.ToPropertyText());
  ASSERT_EQ(reparsed.size(), table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(reparsed.records()[i], table.records()[i]);
  }
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST_F(SessionTest, FPlacesWritesFile) {
  StartWm();
  auto app = Spawn("oclock", {"oclock", "Clock"});
  std::string path = ::testing::TempDir() + "/swm_places_test.sh";
  wm_->ExecuteCommandString("f.places(" + path + ")", 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("swmhints"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swm_test
