// The retained-mode frame pipeline (docs/RENDERING.md): dirty-flag
// invalidation and one-paint-per-flush at the oi layer, event-batch
// coalescing and the paint-reduction guarantee at the swm layer.
#include <gtest/gtest.h>

#include "src/oi/toolkit.h"
#include "src/xlib/icccm.h"
#include "src/xserver/server.h"
#include "tests/swm_test_util.h"

namespace oi {
namespace {

class FrameSchedulerTest : public ::testing::Test {
 protected:
  FrameSchedulerTest()
      : server_({xserver::ScreenConfig{200, 100, false}}), dpy_(&server_, "wm") {
    toolkit_ = std::make_unique<Toolkit>(&dpy_, &db_, 0);
    toolkit_->SetResourcePrefix({"swm", "color", "screen0"},
                                {"Swm", "Color", "Screen0"});
  }

  xserver::Server server_;
  xlib::Display dpy_;
  xrdb::ResourceDatabase db_;
  std::unique_ptr<Toolkit> toolkit_;
};

TEST_F(FrameSchedulerTest, RepeatedInvalidationPaintsOnce) {
  auto panel = toolkit_->CreatePanel(nullptr, dpy_.RootWindow(0), "p");
  auto button = toolkit_->CreateButton(panel.get(), panel->window(), "b");
  Button* b = button.get();
  panel->AddChild(std::move(button));
  toolkit_->FlushFrame();  // Settle construction-time dirt.

  toolkit_->ResetFrameStats();
  for (int i = 0; i < 100; ++i) {
    b->SetLabel("label" + std::to_string(i));
  }
  const FrameScheduler::Stats& stats = toolkit_->frame_stats();
  EXPECT_EQ(stats.invalidations, 100u);
  EXPECT_EQ(stats.objects_painted, 0u);  // Nothing paints before the flush.
  toolkit_->FlushFrame();
  EXPECT_EQ(stats.frames, 1u);
  EXPECT_EQ(stats.layouts, 1u);  // 100 invalidations collapse to one pass.
  EXPECT_GE(stats.objects_painted, 1u);  // The button...
  EXPECT_LE(stats.objects_painted, 2u);  // ...plus the panel if it resized.
  // The final label is what reached the server.
  bool found = false;
  for (const xserver::DrawOp& op :
       server_.FindWindowForTest(b->window())->draw_ops) {
    found = found || op.text == "label99";
  }
  EXPECT_TRUE(found);
}

TEST_F(FrameSchedulerTest, PureMoveDoesNotRepaint) {
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "b");
  button->SetGeometry({0, 0, 20, 5});
  toolkit_->FlushFrame();
  toolkit_->ResetFrameStats();
  button->SetGeometry({50, 30, 20, 5});  // Same size: display list survives.
  toolkit_->FlushFrame();
  EXPECT_EQ(toolkit_->frame_stats().objects_painted, 0u);
  EXPECT_EQ(toolkit_->frame_stats().frames, 0u);  // Nothing pending, no frame.
  std::optional<xbase::Rect> geometry = dpy_.GetGeometry(button->window());
  ASSERT_TRUE(geometry.has_value());
  EXPECT_EQ(geometry->x, 50);  // ...but the move itself was applied.
  EXPECT_EQ(geometry->y, 30);
}

TEST_F(FrameSchedulerTest, ResizeRepaintsWithTightDamage) {
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "b");
  button->SetGeometry({0, 0, 20, 5});
  toolkit_->FlushFrame();
  toolkit_->ResetFrameStats();
  button->SetGeometry({0, 0, 30, 8});
  toolkit_->FlushFrame();
  EXPECT_EQ(toolkit_->frame_stats().objects_painted, 1u);
  EXPECT_EQ(toolkit_->frame_scheduler().last_frame_damage_area(), 30 * 8);
}

TEST_F(FrameSchedulerTest, ExposeDamageIsRetainedUntilFlush) {
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "b");
  button->SetGeometry({0, 0, 10, 3});
  toolkit_->FlushFrame();
  dpy_.DrainEvents([](const xproto::Event&) {});
  toolkit_->ResetFrameStats();
  button->Show();  // Generates Expose.
  dpy_.DrainEvents(
      [&](const xproto::Event& event) { toolkit_->DispatchEvent(event); });
  EXPECT_EQ(toolkit_->frame_stats().expose_rects, 1u);
  EXPECT_TRUE(toolkit_->frame_scheduler().HasPendingWork());
  toolkit_->FlushFrame();
  EXPECT_EQ(toolkit_->frame_stats().objects_painted, 1u);
  EXPECT_FALSE(toolkit_->frame_scheduler().HasPendingWork());
}

TEST_F(FrameSchedulerTest, ImmediateModeBypassesScheduler) {
  toolkit_->frame_scheduler().SetImmediateRender(true);
  auto button = toolkit_->CreateButton(nullptr, dpy_.RootWindow(0), "b");
  button->SetGeometry({0, 0, 12, 3});
  button->SetLabel("hi");
  // No FlushFrame: the eager pipeline already laid out and drew.
  EXPECT_FALSE(server_.FindWindowForTest(button->window())->draw_ops.empty());
  EXPECT_FALSE(toolkit_->frame_scheduler().HasPendingWork());
  EXPECT_GT(toolkit_->frame_stats().frames, 0u);
}

TEST_F(FrameSchedulerTest, DestroyedObjectsAreForgotten) {
  auto panel = toolkit_->CreatePanel(nullptr, dpy_.RootWindow(0), "p");
  auto button = toolkit_->CreateButton(panel.get(), panel->window(), "b");
  Button* b = button.get();
  panel->AddChild(std::move(button));
  b->SetLabel("pending");  // Dirty, never flushed.
  panel.reset();
  toolkit_->FlushFrame();  // Must not touch the freed objects.
  EXPECT_FALSE(toolkit_->frame_scheduler().HasPendingWork());
}

}  // namespace
}  // namespace oi

namespace swm_test {
namespace {

// Regression for the BuildIcon DoLayout()-without-render bug: an icon built
// while the client iconifies must be laid out AND painted, and a retitle
// while iconic must reach the screen.
TEST_F(SwmTest, IconBuiltWhileIconicIsPainted) {
  StartWm();
  auto app = Spawn("edit", {"edit", "Editor"});
  xlib::SetWmIconName(&app->display(), app->window(), "ed");
  wm_->ProcessEvents();
  swm::ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);

  app->RequestIconify();
  wm_->ProcessEvents();
  ASSERT_NE(client->icon, nullptr);
  oi::Object* name_obj = client->icon->FindDescendant("iconname");
  ASSERT_NE(name_obj, nullptr);
  auto label_drawn = [&](const std::string& text) {
    for (const xserver::DrawOp& op :
         server_->FindWindowForTest(name_obj->window())->draw_ops) {
      if (op.text == text) {
        return true;
      }
    }
    return false;
  };
  EXPECT_GT(name_obj->geometry().width, 0);
  EXPECT_TRUE(label_drawn("ed"));

  // Retitle while iconic: relayout (the label grows) plus repaint.
  int old_width = name_obj->geometry().width;
  xlib::SetWmIconName(&app->display(), app->window(), "renamed-editor");
  wm_->ProcessEvents();
  EXPECT_TRUE(label_drawn("renamed-editor"));
  EXPECT_GT(name_obj->geometry().width, old_width);
}

// Satellite: redundant ConfigureNotify/Expose within one drained batch are
// coalesced (keep-last / union-rects) before dispatch.
TEST_F(SwmTest, EventBatchCoalescesConfigureAndExpose) {
  StartWm();
  auto app = Spawn("app", {"app", "App"});
  ASSERT_NE(Managed(*app), nullptr);
  uint64_t coalesced_before = wm_->events_coalesced();
  uint64_t dispatched_before = wm_->events_dispatched();
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    app->RequestMoveResize({i * 5, i * 3, 30 + i, 10 + i});
  }
  wm_->ProcessEvents();
  // Each request dispatches (requests carry distinct deltas), but the
  // notify/expose cascade they trigger collapses.
  EXPECT_GE(wm_->events_dispatched() - dispatched_before,
            static_cast<uint64_t>(kRequests));
  EXPECT_GT(wm_->events_coalesced(), coalesced_before);
  // Keep-last semantics: the final request is what sticks.
  std::optional<xbase::Rect> geometry = app->display().GetGeometry(app->window());
  ASSERT_TRUE(geometry.has_value());
  EXPECT_EQ(geometry->width, 30 + kRequests - 1);
  EXPECT_EQ(geometry->height, 10 + kRequests - 1);
}

// Acceptance: on the event-storm workload the retained pipeline paints at
// least 2x fewer objects than the immediate-render ablation, with an
// identical final framebuffer.
TEST(FramePipelineStorm, RetainedPaintsAtLeastTwiceFewerObjects) {
  struct Run {
    std::unique_ptr<xserver::Server> server;
    std::unique_ptr<swm::WindowManager> wm;
    std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  };
  auto start = [](bool immediate_render) {
    Run run;
    run.server = std::make_unique<xserver::Server>(
        std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{300, 200, false}});
    swm::WindowManager::Options options;
    options.template_name = "openlook";
    options.immediate_render = immediate_render;
    run.wm = std::make_unique<swm::WindowManager>(run.server.get(), options);
    EXPECT_TRUE(run.wm->Start());
    for (int i = 0; i < 4; ++i) {
      xlib::ClientAppConfig config;
      config.name = "storm" + std::to_string(i);
      config.wm_class = {config.name, "Storm"};
      config.command = {config.name};
      config.geometry = {10 + i * 40, 10 + i * 20, 40, 20};
      run.apps.push_back(
          std::make_unique<xlib::ClientApp>(run.server.get(), config));
      run.apps.back()->Map();
    }
    run.wm->ProcessEvents();
    run.wm->toolkit(0).ResetFrameStats();
    return run;
  };
  auto storm = [](Run* run) {
    for (int round = 0; round < 4; ++round) {
      for (int e = 0; e < 8; ++e) {
        for (size_t i = 0; i < run->apps.size(); ++i) {
          xlib::ClientApp& app = *run->apps[i];
          app.RequestMoveResize({static_cast<int>(i) * 30 + e * 4, round * 10 + e,
                                 40 + (e % 3) * 6, 20 + (e % 2) * 4});
          xlib::SetWmName(&app.display(), app.window(),
                          "w" + std::to_string((e + round) % 5));
        }
      }
      run->wm->ProcessEvents();  // One flush per batch of 8 x 4 events.
    }
  };

  Run retained = start(/*immediate_render=*/false);
  Run immediate = start(/*immediate_render=*/true);
  storm(&retained);
  storm(&immediate);

  uint64_t retained_painted = retained.wm->toolkit(0).frame_stats().objects_painted;
  uint64_t immediate_painted = immediate.wm->toolkit(0).frame_stats().objects_painted;
  EXPECT_GT(retained_painted, 0u);
  EXPECT_GE(immediate_painted, 2 * retained_painted)
      << "retained=" << retained_painted << " immediate=" << immediate_painted;
  EXPECT_EQ(retained.server->RenderScreen(0).ToString(),
            immediate.server->RenderScreen(0).ToString());
}

}  // namespace
}  // namespace swm_test
