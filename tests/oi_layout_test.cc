// Deeper layout-engine coverage: forced sizes, size overrides, floating
// objects, nested panels, preferred-size arithmetic and refresh semantics.
#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/oi/toolkit.h"
#include "src/xserver/server.h"

namespace oi {
namespace {

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest()
      : server_({xserver::ScreenConfig{300, 200, false}}), dpy_(&server_, "wm") {
    toolkit_ = std::make_unique<Toolkit>(&dpy_, &db_, 0);
    toolkit_->SetResourcePrefix({"swm", "color", "screen0"},
                                {"Swm", "Color", "Screen0"});
  }

  std::unique_ptr<Panel> Build(const std::string& root) {
    auto lookup = [this](const std::string& name) -> std::optional<std::string> {
      return db_.Get({"swm", "color", "screen0", "panel", name},
                     {"Swm", "Color", "Screen0", "Panel", name});
    };
    return toolkit_->BuildPanelTree(root, dpy_.RootWindow(0), lookup);
  }

  xserver::Server server_;
  xlib::Display dpy_;
  xrdb::ResourceDatabase db_;
  std::unique_ptr<Toolkit> toolkit_;
};

TEST_F(LayoutTest, PreferredSizeSumsRows) {
  db_.Put("swm*panel.p", "button a +0+0 button b +1+0 button c +0+1");
  auto tree = Build("p");
  Object* a = tree->FindDescendant("a");
  Object* b = tree->FindDescendant("b");
  Object* c = tree->FindDescendant("c");
  xbase::Size pref = tree->PreferredSize();
  // Width: row 0 = a + gap + b; row 1 = c alone; max of the two.
  int row0 = a->PreferredSize().width + Panel::kGap + b->PreferredSize().width;
  EXPECT_EQ(pref.width, std::max(row0, c->PreferredSize().width));
  EXPECT_EQ(pref.height, a->PreferredSize().height + c->PreferredSize().height);
}

TEST_F(LayoutTest, ForcedSizeWinsOverPreferred) {
  db_.Put("swm*panel.p", "button a +0+0");
  auto tree = Build("p");
  xbase::Size forced{120, 40};
  tree->DoLayout(&forced);
  EXPECT_EQ(tree->geometry().size(), forced);
  // Children keep natural sizes.
  EXPECT_EQ(tree->FindDescendant("a")->geometry().size(),
            tree->FindDescendant("a")->PreferredSize());
}

TEST_F(LayoutTest, SizeOverrideDrivesLayout) {
  db_.Put("swm*panel.p", "panel client +0+0");
  auto tree = Build("p");
  Object* client = tree->FindDescendant("client");
  client->SetSizeOverride(xbase::Size{77, 33});
  tree->DoLayout();
  EXPECT_EQ(client->geometry().size(), (xbase::Size{77, 33}));
  EXPECT_EQ(tree->geometry().size(), (xbase::Size{77, 33}));
  client->SetSizeOverride(std::nullopt);
  tree->DoLayout();
  EXPECT_EQ(tree->geometry().size(), client->PreferredSize());
}

TEST_F(LayoutTest, FloatingChildrenExcludedFromRows) {
  db_.Put("swm*panel.p", "button a +0+0 button b +1+0");
  auto tree = Build("p");
  auto corner = toolkit_->CreateButton(tree.get(), tree->window(), "corner");
  corner->SetFloating(true);
  corner->SetGeometry({0, 0, 1, 1});
  Object* corner_ptr = tree->AddChild(std::move(corner));
  xbase::Size before = tree->PreferredSize();
  tree->DoLayout();
  // The floating child was not laid out into a row and does not widen the
  // panel.
  EXPECT_EQ(tree->geometry().size(), before);
  EXPECT_EQ(corner_ptr->geometry(), (xbase::Rect{0, 0, 1, 1}));
}

TEST_F(LayoutTest, NestedPanelGetsAssignedSize) {
  db_.Put("swm*panel.outer", "panel inner +0+0");
  db_.Put("swm*panel.inner", "button x +0+0");
  auto tree = Build("outer");
  Object* inner = tree->FindDescendant("inner");
  inner->SetSizeOverride(xbase::Size{50, 20});
  tree->DoLayout();
  // The nested panel was laid out at its assigned (overridden) size, and
  // its own child is positioned inside it.
  EXPECT_EQ(inner->geometry().size(), (xbase::Size{50, 20}));
  Object* x = static_cast<Panel*>(inner)->FindDescendant("x");
  EXPECT_EQ(x->geometry().origin(), (xbase::Point{0, 0}));
}

TEST_F(LayoutTest, CenterGroupOfSeveralButtons) {
  db_.Put("swm*panel.p",
          "button l +0+0 button c1 +C+0 button c2 +C+0 panel client +0+1");
  auto tree = Build("p");
  tree->FindDescendant("client")->SetSizeOverride(xbase::Size{80, 5});
  tree->DoLayout();
  Object* c1 = tree->FindDescendant("c1");
  Object* c2 = tree->FindDescendant("c2");
  // Centered as a block, in column order, around x=40.
  EXPECT_LT(c1->geometry().x, c2->geometry().x);
  int block_left = c1->geometry().x;
  int block_right = c2->geometry().Right();
  EXPECT_NEAR((block_left + block_right) / 2, 40, 2);
}

TEST_F(LayoutTest, RightGroupPacksFromRightInColumnOrder) {
  db_.Put("swm*panel.p", "button r0 -0+0 button r1 -1+0 panel client +0+1");
  auto tree = Build("p");
  tree->FindDescendant("client")->SetSizeOverride(xbase::Size{60, 5});
  tree->DoLayout();
  Object* r0 = tree->FindDescendant("r0");
  Object* r1 = tree->FindDescendant("r1");
  // -0 is the rightmost column; -1 sits to its left.
  EXPECT_EQ(r0->geometry().Right(), 60);
  EXPECT_LT(r1->geometry().Right(), r0->geometry().x);
}

TEST_F(LayoutTest, RowHeightIsMaxOfChildren) {
  db_.Put("swm*panel.p", "button small +0+0 panel tall +1+0 button below +0+1");
  auto tree = Build("p");
  Object* tall = tree->FindDescendant("tall");
  tall->SetSizeOverride(xbase::Size{10, 9});
  tree->DoLayout();
  EXPECT_EQ(tree->FindDescendant("below")->geometry().y, 9);
}

TEST_F(LayoutTest, EmptyPanelHasMinimalSize) {
  db_.Put("swm*panel.p", "panel client +0+0");
  auto tree = Build("p");
  Object* client = tree->FindDescendant("client");
  EXPECT_EQ(client->PreferredSize(), (xbase::Size{1, 1}));
}

TEST_F(LayoutTest, RemoveChildReturnsOwnership) {
  db_.Put("swm*panel.p", "button a +0+0 button b +1+0");
  auto tree = Build("p");
  Object* b = tree->FindDescendant("b");
  std::unique_ptr<Object> removed = tree->RemoveChild(b);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed.get(), b);
  EXPECT_EQ(tree->FindDescendant("b"), nullptr);
  EXPECT_EQ(tree->children().size(), 1u);
  EXPECT_EQ(tree->RemoveChild(b), nullptr);  // Already removed.
}

TEST_F(LayoutTest, RefreshAttributesPicksUpDatabaseChanges) {
  db_.Put("swm*panel.p", "button a +0+0");
  auto tree = Build("p");
  auto* a = static_cast<Button*>(tree->FindDescendant("a"));
  EXPECT_TRUE(a->bindings().empty());
  db_.Put("swm*button.a.bindings", "<Btn1> : f.raise");
  db_.Put("swm*button.a.label", "NEW");
  tree->RefreshAttributes();
  EXPECT_EQ(a->bindings().size(), 1u);
  EXPECT_EQ(a->label(), "NEW");
}

TEST_F(LayoutTest, MenuPreferredSizeTracksItems) {
  auto menu = toolkit_->CreateMenu(dpy_.RootWindow(0), "m");
  xbase::Size empty = menu->PreferredSize();
  menu->AddItem("i1", "Short");
  menu->AddItem("i2", "A much longer item label");
  xbase::Size filled = menu->PreferredSize();
  EXPECT_GT(filled.height, empty.height);
  EXPECT_GE(filled.width, static_cast<int>(std::string("A much longer item label")
                                               .size()));
}

TEST_F(LayoutTest, TextObjectSizing) {
  auto text = toolkit_->CreateText(nullptr, dpy_.RootWindow(0), "t");
  text->SetText("hello world");
  EXPECT_EQ(text->PreferredSize().width, 13);  // len + 2 padding.
  EXPECT_EQ(text->PreferredSize().height, 1);
}

}  // namespace
}  // namespace oi
