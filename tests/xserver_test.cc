#include "src/xserver/server.h"

#include <gtest/gtest.h>

namespace xserver {
namespace {

using xproto::Event;
using xproto::kNone;
using xproto::WindowId;

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : server_({ScreenConfig{200, 100, false}}) {
    client_ = server_.Connect("hostA");
    wm_ = server_.Connect("wmhost");
  }

  // Drains one client's queue into a vector.
  std::vector<Event> Drain(xproto::ClientId client) {
    std::vector<Event> events;
    while (auto event = server_.NextEvent(client)) {
      events.push_back(std::move(*event));
    }
    return events;
  }

  template <typename T>
  std::vector<T> DrainOf(xproto::ClientId client) {
    std::vector<T> out;
    for (Event& event : Drain(client)) {
      if (T* typed = std::get_if<T>(&event)) {
        out.push_back(*typed);
      }
    }
    return out;
  }

  Server server_;
  xproto::ClientId client_ = 0;
  xproto::ClientId wm_ = 0;
};

TEST_F(ServerTest, ScreenSetup) {
  EXPECT_EQ(server_.ScreenCount(), 1);
  EXPECT_NE(server_.RootWindow(0), kNone);
  EXPECT_EQ(server_.screen(0).size, (xbase::Size{200, 100}));
  EXPECT_TRUE(server_.IsViewable(server_.RootWindow(0)));
}

TEST_F(ServerTest, MultiScreen) {
  Server multi({ScreenConfig{100, 100, false}, ScreenConfig{50, 50, true}});
  EXPECT_EQ(multi.ScreenCount(), 2);
  EXPECT_NE(multi.RootWindow(0), multi.RootWindow(1));
  EXPECT_TRUE(multi.screen(1).monochrome);
  EXPECT_EQ(multi.ScreenOfWindow(multi.RootWindow(1)), 1);
}

TEST_F(ServerTest, CreateDestroyWindow) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0),
                                      {10, 10, 50, 40}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  ASSERT_NE(win, kNone);
  EXPECT_TRUE(server_.WindowExists(win));
  EXPECT_EQ(server_.GetGeometry(win), (xbase::Rect{10, 10, 50, 40}));
  EXPECT_FALSE(server_.IsViewable(win));  // Not mapped yet.
  EXPECT_TRUE(server_.DestroyWindow(client_, win));
  EXPECT_FALSE(server_.WindowExists(win));
}

TEST_F(ServerTest, RootCannotBeDestroyed) {
  EXPECT_FALSE(server_.DestroyWindow(client_, server_.RootWindow(0)));
}

TEST_F(ServerTest, DestroyRecursesAndNotifies) {
  WindowId parent = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 50, 50},
                                         0, xproto::WindowClass::kInputOutput, false);
  WindowId child = server_.CreateWindow(client_, parent, {5, 5, 10, 10}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, child, xproto::kStructureNotifyMask);
  server_.DestroyWindow(client_, parent);
  EXPECT_FALSE(server_.WindowExists(child));
  auto destroys = DrainOf<xproto::DestroyNotifyEvent>(client_);
  bool saw_child = false;
  for (const auto& event : destroys) {
    if (event.window == child) {
      saw_child = true;
    }
  }
  EXPECT_TRUE(saw_child);
}

TEST_F(ServerTest, MapUnmapNotifications) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win,
                      xproto::kStructureNotifyMask | xproto::kExposureMask);
  server_.MapWindow(client_, win);
  EXPECT_TRUE(server_.IsViewable(win));
  bool saw_map = false;
  bool saw_expose = false;
  for (Event& event : Drain(client_)) {
    if (std::get_if<xproto::MapNotifyEvent>(&event) != nullptr) {
      saw_map = true;
    }
    if (std::get_if<xproto::ExposeEvent>(&event) != nullptr) {
      saw_expose = true;
    }
  }
  EXPECT_TRUE(saw_map);
  EXPECT_TRUE(saw_expose);

  server_.UnmapWindow(client_, win);
  EXPECT_FALSE(server_.IsViewable(win));
  EXPECT_FALSE(DrainOf<xproto::UnmapNotifyEvent>(client_).empty());
}

TEST_F(ServerTest, ViewabilityRequiresAncestorsMapped) {
  WindowId parent = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 50, 50},
                                         0, xproto::WindowClass::kInputOutput, false);
  WindowId child = server_.CreateWindow(client_, parent, {0, 0, 10, 10}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.MapWindow(client_, child);
  EXPECT_FALSE(server_.IsViewable(child));
  EXPECT_EQ(server_.GetWindowAttributes(child)->map_state, xproto::MapState::kUnviewable);
  server_.MapWindow(client_, parent);
  EXPECT_TRUE(server_.IsViewable(child));
}

TEST_F(ServerTest, SubstructureRedirectRoutesMapRequest) {
  ASSERT_TRUE(
      server_.SelectInput(wm_, server_.RootWindow(0), xproto::kSubstructureRedirectMask));
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.MapWindow(client_, win);
  // Not mapped: redirected to the WM.
  EXPECT_FALSE(server_.IsViewable(win));
  auto requests = DrainOf<xproto::MapRequestEvent>(wm_);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].window, win);
  EXPECT_EQ(requests[0].parent, server_.RootWindow(0));
  // The WM itself mapping the window succeeds.
  server_.MapWindow(wm_, win);
  EXPECT_TRUE(server_.IsViewable(win));
}

TEST_F(ServerTest, OverrideRedirectBypassesWm) {
  server_.SelectInput(wm_, server_.RootWindow(0), xproto::kSubstructureRedirectMask);
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, true);
  server_.MapWindow(client_, win);
  EXPECT_TRUE(server_.IsViewable(win));
  EXPECT_TRUE(DrainOf<xproto::MapRequestEvent>(wm_).empty());
}

TEST_F(ServerTest, SecondRedirectSelectionFails) {
  EXPECT_TRUE(
      server_.SelectInput(wm_, server_.RootWindow(0), xproto::kSubstructureRedirectMask));
  EXPECT_FALSE(server_.SelectInput(client_, server_.RootWindow(0),
                                   xproto::kSubstructureRedirectMask));
  // Same client may re-select.
  EXPECT_TRUE(
      server_.SelectInput(wm_, server_.RootWindow(0),
                          xproto::kSubstructureRedirectMask | xproto::kButtonPressMask));
}

TEST_F(ServerTest, ConfigureRequestRedirected) {
  server_.SelectInput(wm_, server_.RootWindow(0), xproto::kSubstructureRedirectMask);
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.MoveResizeWindow(client_, win, {5, 6, 70, 80});
  EXPECT_EQ(server_.GetGeometry(win), (xbase::Rect{0, 0, 10, 10}));  // Unchanged.
  auto requests = DrainOf<xproto::ConfigureRequestEvent>(wm_);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].geometry, (xbase::Rect{5, 6, 70, 80}));
  EXPECT_EQ(requests[0].value_mask & (xproto::kConfigWidth | xproto::kConfigHeight),
            xproto::kConfigWidth | xproto::kConfigHeight);
}

TEST_F(ServerTest, ConfigureMovesResizesNotifies) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win, xproto::kStructureNotifyMask);
  server_.MoveResizeWindow(client_, win, {30, 40, 50, 60});
  EXPECT_EQ(server_.GetGeometry(win), (xbase::Rect{30, 40, 50, 60}));
  auto notifies = DrainOf<xproto::ConfigureNotifyEvent>(client_);
  ASSERT_FALSE(notifies.empty());
  EXPECT_EQ(notifies.back().geometry, (xbase::Rect{30, 40, 50, 60}));
  EXPECT_FALSE(notifies.back().synthetic);
}

TEST_F(ServerTest, StackingOrderRaiseLower) {
  WindowId root = server_.RootWindow(0);
  WindowId a = server_.CreateWindow(client_, root, {0, 0, 10, 10}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  WindowId b = server_.CreateWindow(client_, root, {0, 0, 10, 10}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  WindowId c = server_.CreateWindow(client_, root, {0, 0, 10, 10}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  auto order = [&]() { return server_.QueryTree(root)->children; };
  EXPECT_EQ(order(), (std::vector<WindowId>{a, b, c}));
  server_.RaiseWindow(client_, a);
  EXPECT_EQ(order(), (std::vector<WindowId>{b, c, a}));
  server_.LowerWindow(client_, c);
  EXPECT_EQ(order(), (std::vector<WindowId>{c, b, a}));
  // Stack above a specific sibling.
  ConfigureValues values;
  values.sibling = c;
  values.stack_mode = xproto::StackMode::kAbove;
  server_.ConfigureWindow(client_, a, xproto::kConfigSibling | xproto::kConfigStackMode,
                          values);
  EXPECT_EQ(order(), (std::vector<WindowId>{c, a, b}));
}

TEST_F(ServerTest, ReparentPreservesSubtreeAndNotifies) {
  WindowId root = server_.RootWindow(0);
  WindowId new_parent = server_.CreateWindow(client_, root, {50, 50, 100, 50}, 0,
                                             xproto::WindowClass::kInputOutput, false);
  WindowId win = server_.CreateWindow(client_, root, {10, 10, 20, 20}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  WindowId grandchild = server_.CreateWindow(client_, win, {1, 1, 5, 5}, 0,
                                             xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win, xproto::kStructureNotifyMask);
  server_.MapWindow(client_, new_parent);
  server_.MapWindow(client_, win);
  Drain(client_);

  EXPECT_TRUE(server_.ReparentWindow(client_, win, new_parent, {3, 4}));
  EXPECT_EQ(server_.QueryTree(win)->parent, new_parent);
  EXPECT_EQ(server_.GetGeometry(win)->origin(), (xbase::Point{3, 4}));
  EXPECT_EQ(server_.QueryTree(grandchild)->parent, win);
  // Still mapped after reparent (unmap/remap round trip).
  EXPECT_TRUE(server_.IsViewable(win));

  bool saw_reparent = false;
  bool saw_unmap = false;
  bool saw_map = false;
  for (Event& event : Drain(client_)) {
    if (auto* reparent = std::get_if<xproto::ReparentNotifyEvent>(&event)) {
      saw_reparent = true;
      EXPECT_EQ(reparent->parent, new_parent);
    }
    saw_unmap |= std::get_if<xproto::UnmapNotifyEvent>(&event) != nullptr;
    saw_map |= std::get_if<xproto::MapNotifyEvent>(&event) != nullptr;
  }
  EXPECT_TRUE(saw_reparent);
  EXPECT_TRUE(saw_unmap);
  EXPECT_TRUE(saw_map);
}

TEST_F(ServerTest, ReparentRejectsCycles) {
  WindowId root = server_.RootWindow(0);
  WindowId a = server_.CreateWindow(client_, root, {0, 0, 10, 10}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  WindowId b = server_.CreateWindow(client_, a, {0, 0, 5, 5}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  EXPECT_FALSE(server_.ReparentWindow(client_, a, b, {0, 0}));
  EXPECT_FALSE(server_.ReparentWindow(client_, a, a, {0, 0}));
}

TEST_F(ServerTest, TranslateCoordinates) {
  WindowId root = server_.RootWindow(0);
  WindowId a = server_.CreateWindow(client_, root, {10, 20, 50, 50}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  WindowId b = server_.CreateWindow(client_, a, {5, 5, 20, 20}, 0,
                                    xproto::WindowClass::kInputOutput, false);
  EXPECT_EQ(server_.TranslateCoordinates(b, root, {0, 0}), (xbase::Point{15, 25}));
  EXPECT_EQ(server_.TranslateCoordinates(root, b, {15, 25}), (xbase::Point{0, 0}));
  EXPECT_EQ(server_.RootPosition(b), (xbase::Point{15, 25}));
}

TEST_F(ServerTest, PropertiesRoundTripAndNotify) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(wm_, win, xproto::kPropertyChangeMask);
  xproto::AtomId prop = server_.InternAtom("WM_NAME");
  xproto::AtomId type = server_.InternAtom("STRING");
  EXPECT_EQ(server_.InternAtom("WM_NAME"), prop);  // Idempotent.
  EXPECT_EQ(server_.GetAtomName(prop), "WM_NAME");

  std::vector<uint8_t> data{'h', 'i'};
  EXPECT_TRUE(server_.ChangeProperty(client_, win, prop, type, 8, PropMode::kReplace, data));
  auto rec = server_.GetProperty(win, prop);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data, data);
  EXPECT_EQ(rec->format, 8);

  // Append mode grows the value; type mismatch fails.
  EXPECT_TRUE(server_.ChangeProperty(client_, win, prop, type, 8, PropMode::kAppend,
                                     {'!', '!'}));
  EXPECT_EQ(server_.GetProperty(win, prop)->data.size(), 4u);
  EXPECT_FALSE(server_.ChangeProperty(client_, win, prop, server_.InternAtom("CARDINAL"),
                                      32, PropMode::kAppend, {0, 0, 0, 0}));

  auto notifies = DrainOf<xproto::PropertyNotifyEvent>(wm_);
  ASSERT_EQ(notifies.size(), 2u);
  EXPECT_EQ(notifies[0].atom, prop);
  EXPECT_EQ(notifies[0].state, xproto::PropertyState::kNewValue);

  EXPECT_TRUE(server_.DeleteProperty(client_, win, prop));
  EXPECT_FALSE(server_.GetProperty(win, prop).has_value());
  notifies = DrainOf<xproto::PropertyNotifyEvent>(wm_);
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_EQ(notifies[0].state, xproto::PropertyState::kDeleted);
  EXPECT_FALSE(server_.DeleteProperty(client_, win, prop));  // Already gone.
}

TEST_F(ServerTest, SaveSetReparentsOnDisconnect) {
  // The WM reparents the client's window into a frame and adds it to its
  // save set; when the WM dies, the window must return to the root and be
  // remapped — this is what lets a WM crash without losing windows.
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {7, 8, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.MapWindow(client_, win);
  WindowId frame = server_.CreateWindow(wm_, server_.RootWindow(0), {20, 20, 14, 14}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.MapWindow(wm_, frame);
  server_.ReparentWindow(wm_, win, frame, {2, 2});
  server_.ChangeSaveSet(wm_, win, true);
  ASSERT_EQ(server_.QueryTree(win)->parent, frame);

  server_.Disconnect(wm_);
  EXPECT_TRUE(server_.WindowExists(win));           // Client window survives.
  EXPECT_FALSE(server_.WindowExists(frame));        // WM's own window is gone.
  EXPECT_EQ(server_.QueryTree(win)->parent, server_.RootWindow(0));
  EXPECT_TRUE(server_.IsViewable(win));
  // Position preserved at its old root coordinates.
  EXPECT_EQ(server_.GetGeometry(win)->origin(), (xbase::Point{22, 22}));
}

TEST_F(ServerTest, DisconnectDestroysOwnedWindows) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.Disconnect(client_);
  EXPECT_FALSE(server_.WindowExists(win));
  EXPECT_FALSE(server_.HasClient(client_));
}

TEST_F(ServerTest, SendEventWithMaskZeroGoesToOwner) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  xproto::ClientMessageEvent message;
  message.window = win;
  message.message_type = server_.InternAtom("TEST");
  EXPECT_TRUE(server_.SendEvent(wm_, win, 0, Event{message}));
  EXPECT_EQ(server_.PendingEvents(client_), 1u);
  EXPECT_EQ(server_.PendingEvents(wm_), 0u);
}

TEST_F(ServerTest, ClampToProtocolLimit) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 10, 10}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.ResizeWindow(client_, win, {100000, 5});
  EXPECT_EQ(server_.GetGeometry(win)->width, xproto::kMaxCoordinate);
}

// ---- Pointer, buttons, grabs ---------------------------------------------------

class PointerTest : public ServerTest {};

TEST_F(PointerTest, EnterLeaveOnMotion) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {10, 10, 20, 20},
                                      0, xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win,
                      xproto::kEnterWindowMask | xproto::kLeaveWindowMask);
  server_.MapWindow(client_, win);
  Drain(client_);

  server_.SimulateMotion({15, 15});
  auto crossings = DrainOf<xproto::CrossingEvent>(client_);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_TRUE(crossings[0].enter);
  EXPECT_EQ(crossings[0].pos, (xbase::Point{5, 5}));

  server_.SimulateMotion({50, 50});
  crossings = DrainOf<xproto::CrossingEvent>(client_);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_FALSE(crossings[0].enter);
}

TEST_F(PointerTest, ButtonPropagatesToFirstSelectingAncestor) {
  WindowId outer = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 100, 100},
                                        0, xproto::WindowClass::kInputOutput, false);
  WindowId inner = server_.CreateWindow(client_, outer, {10, 10, 20, 20}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, outer, xproto::kButtonPressMask);
  server_.MapWindow(client_, outer);
  server_.MapWindow(client_, inner);
  server_.SimulateMotion({15, 15});  // Inside inner.
  Drain(client_);

  server_.SimulateButton(1, true);
  auto buttons = DrainOf<xproto::ButtonEvent>(client_);
  ASSERT_EQ(buttons.size(), 1u);
  EXPECT_EQ(buttons[0].window, outer);    // Propagated up.
  EXPECT_EQ(buttons[0].subwindow, inner);
  EXPECT_EQ(buttons[0].pos, (xbase::Point{15, 15}));
  server_.SimulateButton(1, false);
}

TEST_F(PointerTest, AutomaticGrabDeliversMotionAndRelease) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 50, 50}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win,
                      xproto::kButtonPressMask | xproto::kButtonReleaseMask);
  server_.MapWindow(client_, win);
  server_.SimulateMotion({5, 5});
  Drain(client_);

  server_.SimulateButton(1, true);
  // Move outside the window: the grab still routes events to it.
  server_.SimulateMotion({150, 90});
  server_.SimulateButton(1, false);

  auto events = Drain(client_);
  int presses = 0;
  int motions = 0;
  int releases = 0;
  for (Event& event : events) {
    if (auto* button = std::get_if<xproto::ButtonEvent>(&event)) {
      (button->press ? presses : releases) += 1;
      EXPECT_EQ(button->window, win);
    }
    if (auto* motion = std::get_if<xproto::MotionEvent>(&event)) {
      ++motions;
      EXPECT_EQ(motion->window, win);
      EXPECT_EQ(motion->pos, (xbase::Point{150, 90}));
    }
  }
  EXPECT_EQ(presses, 1);
  EXPECT_EQ(motions, 1);
  EXPECT_EQ(releases, 1);
}

TEST_F(PointerTest, PassiveGrabInterceptsDescendantClicks) {
  WindowId frame = server_.CreateWindow(wm_, server_.RootWindow(0), {0, 0, 60, 60}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  WindowId inner = server_.CreateWindow(client_, frame, {5, 5, 40, 40}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, inner, xproto::kButtonPressMask);
  server_.MapWindow(wm_, frame);
  server_.MapWindow(client_, inner);
  ASSERT_TRUE(server_.GrabButton(wm_, frame, 1, 0, xproto::kButtonPressMask));
  server_.SimulateMotion({10, 10});
  Drain(client_);
  Drain(wm_);

  server_.SimulateButton(1, true, 0);
  // The grab fires for the WM; the inner window does not see the press.
  auto wm_buttons = DrainOf<xproto::ButtonEvent>(wm_);
  ASSERT_EQ(wm_buttons.size(), 1u);
  EXPECT_EQ(wm_buttons[0].window, frame);
  EXPECT_EQ(wm_buttons[0].subwindow, inner);
  EXPECT_TRUE(DrainOf<xproto::ButtonEvent>(client_).empty());
  server_.SimulateButton(1, false, 0);
  // The release is also routed to the grabbing client; drain it.
  EXPECT_EQ(DrainOf<xproto::ButtonEvent>(wm_).size(), 1u);

  // Different modifiers bypass the grab.
  server_.SimulateButton(1, true, static_cast<uint32_t>(xproto::ModifierMask::kShift));
  EXPECT_TRUE(DrainOf<xproto::ButtonEvent>(wm_).empty());
  EXPECT_EQ(DrainOf<xproto::ButtonEvent>(client_).size(), 1u);
  server_.SimulateButton(1, false, static_cast<uint32_t>(xproto::ModifierMask::kShift));

  EXPECT_TRUE(server_.UngrabButton(wm_, frame, 1, 0));
  EXPECT_FALSE(server_.UngrabButton(wm_, frame, 1, 0));
}

TEST_F(PointerTest, KeyDeliveredToWindowUnderPointer) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 50, 50}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win, xproto::kKeyPressMask);
  server_.MapWindow(client_, win);
  server_.SimulateMotion({10, 10});
  Drain(client_);
  server_.SimulateKey(42, true, 0);
  auto keys = DrainOf<xproto::KeyEvent>(client_);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].keysym, 42u);
  EXPECT_EQ(keys[0].window, win);
}

TEST_F(PointerTest, InputFollowsShape) {
  // A shaped window only receives pointer events within its shape.
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 20, 20}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win, xproto::kButtonPressMask);
  server_.MapWindow(client_, win);
  server_.ShapeSetRegion(client_, win, xbase::Region(xbase::Rect{0, 0, 10, 10}));
  Drain(client_);

  server_.SimulateMotion({5, 5});  // Inside the shape.
  server_.SimulateButton(1, true);
  server_.SimulateButton(1, false);
  EXPECT_EQ(DrainOf<xproto::ButtonEvent>(client_).size(), 2u);

  server_.SimulateMotion({15, 15});  // Inside bounds, outside shape.
  server_.SimulateButton(1, true);
  server_.SimulateButton(1, false);
  EXPECT_TRUE(DrainOf<xproto::ButtonEvent>(client_).empty());
}

// ---- Input focus ---------------------------------------------------------------

TEST_F(ServerTest, InputFocusLifecycle) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 20, 20}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SelectInput(client_, win,
                      xproto::kFocusChangeMask | xproto::kKeyPressMask);
  // Unviewable windows cannot take focus.
  EXPECT_FALSE(server_.SetInputFocus(client_, win));
  server_.MapWindow(client_, win);
  Drain(client_);

  EXPECT_TRUE(server_.SetInputFocus(client_, win));
  EXPECT_EQ(server_.GetInputFocus(), win);
  auto focus_events = DrainOf<xproto::FocusEvent>(client_);
  ASSERT_EQ(focus_events.size(), 1u);
  EXPECT_TRUE(focus_events[0].in);

  // Keys now go to the focus window even with the pointer elsewhere.
  server_.SimulateMotion({150, 90});
  Drain(client_);
  server_.SimulateKey(7, true);
  auto keys = DrainOf<xproto::KeyEvent>(client_);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].window, win);

  // Reverting to pointer-root sends FocusOut.
  EXPECT_TRUE(server_.SetInputFocus(client_, xproto::kNone));
  focus_events = DrainOf<xproto::FocusEvent>(client_);
  ASSERT_EQ(focus_events.size(), 1u);
  EXPECT_FALSE(focus_events[0].in);

  // Destroying a focused window reverts focus.
  server_.MapWindow(client_, win);
  server_.SetInputFocus(client_, win);
  server_.DestroyWindow(client_, win);
  EXPECT_EQ(server_.GetInputFocus(), xproto::kNone);
}

TEST_F(ServerTest, FocusOnBogusWindowRejected) {
  EXPECT_FALSE(server_.SetInputFocus(client_, 424242));
  EXPECT_EQ(server_.GetInputFocus(), xproto::kNone);
}

// ---- SHAPE ------------------------------------------------------------------------

TEST_F(ServerTest, ShapeSetQueryClearNotify) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 16, 16}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.ShapeSelect(wm_, win, true);
  EXPECT_FALSE(server_.IsShaped(win));

  server_.ShapeSetMask(client_, win, xbase::CircleMask(16));
  EXPECT_TRUE(server_.IsShaped(win));
  auto shape = server_.GetShape(win);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->Area(), xbase::CircleMask(16).PopCount());

  auto notifies = DrainOf<xproto::ShapeNotifyEvent>(wm_);
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_TRUE(notifies[0].shaped);

  server_.ShapeClear(client_, win);
  EXPECT_FALSE(server_.IsShaped(win));
  notifies = DrainOf<xproto::ShapeNotifyEvent>(wm_);
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_FALSE(notifies[0].shaped);
}

// ---- Rendering ------------------------------------------------------------------

TEST_F(ServerTest, RenderRespectsStackingAndClipping) {
  WindowId root = server_.RootWindow(0);
  WindowId below = server_.CreateWindow(client_, root, {0, 0, 20, 20}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  WindowId above = server_.CreateWindow(client_, root, {10, 10, 20, 20}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.SetWindowBackground(client_, below, 'b');
  server_.SetWindowBackground(client_, above, 'a');
  server_.MapWindow(client_, below);
  server_.MapWindow(client_, above);
  xbase::Canvas canvas = server_.RenderScreen(0);
  EXPECT_EQ(canvas.At(5, 5), 'b');
  EXPECT_EQ(canvas.At(15, 15), 'a');  // Above wins in the overlap.
  EXPECT_EQ(canvas.At(50, 50), '.');  // Root background elsewhere.

  server_.RaiseWindow(client_, below);
  canvas = server_.RenderScreen(0);
  EXPECT_EQ(canvas.At(15, 15), 'b');
}

TEST_F(ServerTest, RenderClipsChildrenToParent) {
  WindowId parent = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 20, 20},
                                         0, xproto::WindowClass::kInputOutput, false);
  WindowId child = server_.CreateWindow(client_, parent, {15, 15, 20, 20}, 0,
                                        xproto::WindowClass::kInputOutput, false);
  server_.SetWindowBackground(client_, parent, 'p');
  server_.SetWindowBackground(client_, child, 'c');
  server_.MapWindow(client_, parent);
  server_.MapWindow(client_, child);
  xbase::Canvas canvas = server_.RenderScreen(0);
  EXPECT_EQ(canvas.At(16, 16), 'c');
  EXPECT_EQ(canvas.At(25, 25), '.');  // Child clipped at parent boundary.
}

TEST_F(ServerTest, RenderHonorsShape) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {0, 0, 16, 16}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.SetWindowBackground(client_, win, 'w');
  server_.MapWindow(client_, win);
  server_.ShapeSetRegion(client_, win, xbase::Region(xbase::Rect{0, 0, 8, 8}));
  xbase::Canvas canvas = server_.RenderScreen(0);
  EXPECT_EQ(canvas.At(4, 4), 'w');
  EXPECT_EQ(canvas.At(12, 12), '.');  // Outside the shape shows the root.
}

TEST_F(ServerTest, RenderDrawOps) {
  WindowId win = server_.CreateWindow(client_, server_.RootWindow(0), {2, 2, 20, 5}, 0,
                                      xproto::WindowClass::kInputOutput, false);
  server_.MapWindow(client_, win);
  DrawOp text;
  text.kind = DrawOp::Kind::kText;
  text.rect = {1, 1, 0, 0};
  text.text = "hello";
  server_.Draw(client_, win, text);
  xbase::Canvas canvas = server_.RenderScreen(0);
  EXPECT_EQ(canvas.At(3, 3), 'h');
  EXPECT_EQ(canvas.At(7, 3), 'o');
}

}  // namespace
}  // namespace xserver
