// Multi-screen management (paper §3: "swm manages multiple screens on a
// multi-screen X server" with per-screen, per-visual resources).
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

class MultiScreenTest : public SwmTest {
 protected:
  void StartTwoScreens(const std::string& resources = "") {
    StartWm(resources, "openlook",
            {xserver::ScreenConfig{200, 100, false},   // screen0: color
             xserver::ScreenConfig{120, 80, true}});   // screen1: monochrome
  }

  std::unique_ptr<xlib::ClientApp> SpawnOn(int screen, const std::string& name,
                                           const xproto::WmClass& wm_class) {
    xlib::ClientAppConfig config;
    config.name = name;
    config.wm_class = wm_class;
    config.command = {name};
    config.screen = screen;
    config.geometry = {0, 0, 24, 8};
    auto app = std::make_unique<xlib::ClientApp>(server_.get(), config);
    app->Map();
    wm_->ProcessEvents();
    return app;
  }
};

TEST_F(MultiScreenTest, RedirectClaimedOnEveryScreen) {
  StartTwoScreens();
  // A would-be second WM fails on either screen.
  xlib::Display rival(server_.get(), "rival");
  EXPECT_FALSE(rival.SelectInput(rival.RootWindow(0), xproto::kSubstructureRedirectMask));
  EXPECT_FALSE(rival.SelectInput(rival.RootWindow(1), xproto::kSubstructureRedirectMask));
}

TEST_F(MultiScreenTest, ClientsManagedOnTheirOwnScreen) {
  StartTwoScreens();
  auto a = SpawnOn(0, "a", {"a", "A"});
  auto b = SpawnOn(1, "b", {"b", "B"});
  EXPECT_EQ(wm_->FindClient(a->window())->screen, 0);
  EXPECT_EQ(wm_->FindClient(b->window())->screen, 1);
  EXPECT_EQ(server_->ScreenOfWindow(wm_->FindClient(b->window())->frame->window()), 1);
  EXPECT_TRUE(server_->IsViewable(a->window()));
  EXPECT_TRUE(server_->IsViewable(b->window()));
}

TEST_F(MultiScreenTest, MonochromeResourcePrefix) {
  // "swm.monochrome.screen1..." beats generic entries on the mono screen
  // only (paper §3's whole point).
  StartTwoScreens(
      "swm*decoration: openLook\n"
      "swm.monochrome.screen1*decoration: shapeit\n");
  auto color_app = SpawnOn(0, "a", {"a", "A"});
  auto mono_app = SpawnOn(1, "b", {"b", "B"});
  EXPECT_EQ(wm_->FindClient(color_app->window())->decoration_name, "openLook");
  EXPECT_EQ(wm_->FindClient(mono_app->window())->decoration_name, "shapeit");
}

TEST_F(MultiScreenTest, IndependentVirtualDesktops) {
  StartTwoScreens(
      "swm*virtualDesktop: 400x200\n"
      "swm*panner: False\n");
  ASSERT_NE(wm_->vdesk(0), nullptr);
  ASSERT_NE(wm_->vdesk(1), nullptr);
  wm_->vdesk(0)->PanTo({100, 50});
  EXPECT_EQ(wm_->vdesk(0)->offset(), (xbase::Point{100, 50}));
  EXPECT_EQ(wm_->vdesk(1)->offset(), (xbase::Point{0, 0}));
  // Screen 1's desktop is clamped by its own (smaller) viewport.
  wm_->vdesk(1)->PanTo({10000, 10000});
  EXPECT_EQ(wm_->vdesk(1)->offset(), (xbase::Point{400 - 120, 200 - 80}));
}

TEST_F(MultiScreenTest, PerScreenVdeskSizes) {
  StartTwoScreens(
      "swm.color.screen0*virtualDesktop: 600x300\n"
      "swm.monochrome.screen1*virtualDesktop: 240x160\n"
      "swm*panner: False\n");
  EXPECT_EQ(wm_->vdesk(0)->size(), (xbase::Size{600, 300}));
  EXPECT_EQ(wm_->vdesk(1)->size(), (xbase::Size{240, 160}));
}

TEST_F(MultiScreenTest, IconHoldersPerScreen) {
  StartTwoScreens(
      "swm.color.screen0*iconHolders: box0\n"
      "swm*iconHolder.box0.geometry: 50x30+100+4\n");
  EXPECT_EQ(wm_->icon_holders(0).size(), 1u);
  EXPECT_TRUE(wm_->icon_holders(1).empty());
  // A screen-1 icon goes to the root, not screen 0's holder.
  auto b = SpawnOn(1, "b", {"b", "B"});
  wm_->Iconify(wm_->FindClient(b->window()));
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->FindClient(b->window())->icon_holder, nullptr);
  EXPECT_EQ(server_->ScreenOfWindow(wm_->FindClient(b->window())->icon->window()), 1);
}

TEST_F(MultiScreenTest, SessionCoversAllScreens) {
  StartTwoScreens();
  auto a = SpawnOn(0, "appzero", {"appzero", "AppZero"});
  auto b = SpawnOn(1, "appone", {"appone", "AppOne"});
  std::string places = wm_->GeneratePlaces();
  EXPECT_NE(places.find("appzero"), std::string::npos);
  EXPECT_NE(places.find("appone"), std::string::npos);
}

TEST_F(MultiScreenTest, FunctionsResolveTheRightScreen) {
  StartTwoScreens();
  auto a = SpawnOn(0, "a", {"a", "A"});
  auto b = SpawnOn(1, "b", {"b", "B"});
  // Class-targeted functions work across screens.
  wm_->ExecuteCommandString("f.iconify(B)", 0);
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->FindClient(b->window())->state, xproto::WmState::kIconic);
  EXPECT_EQ(wm_->FindClient(a->window())->state, xproto::WmState::kNormal);
}

TEST_F(MultiScreenTest, TeardownRestoresBothScreens) {
  StartTwoScreens();
  auto a = SpawnOn(0, "a", {"a", "A"});
  auto b = SpawnOn(1, "b", {"b", "B"});
  wm_.reset();
  EXPECT_EQ(server_->QueryTree(a->window())->parent, server_->RootWindow(0));
  EXPECT_EQ(server_->QueryTree(b->window())->parent, server_->RootWindow(1));
}

}  // namespace
}  // namespace swm_test
