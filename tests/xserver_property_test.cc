// Randomized operation sequences against the server, checking structural
// invariants after every step: tree consistency, stacking-order membership,
// coordinate arithmetic, save-set hygiene and pointer-window validity.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/xserver/server.h"

namespace xserver {
namespace {

using xproto::ClientId;
using xproto::WindowId;

class ServerFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  ServerFuzzTest() : server_({ScreenConfig{300, 200, false}}) {
    clients_.push_back(server_.Connect("c0"));
    clients_.push_back(server_.Connect("c1"));
    windows_.push_back(server_.RootWindow(0));
  }

  WindowId RandomWindow(std::mt19937* rng) {
    std::uniform_int_distribution<size_t> pick(0, windows_.size() - 1);
    return windows_[pick(*rng)];
  }

  ClientId RandomClient(std::mt19937* rng) {
    std::uniform_int_distribution<size_t> pick(0, clients_.size() - 1);
    return clients_[pick(*rng)];
  }

  void PruneDeadWindows() {
    std::erase_if(windows_, [&](WindowId w) { return !server_.WindowExists(w); });
    if (windows_.empty()) {
      windows_.push_back(server_.RootWindow(0));
    }
  }

  // The structural invariants that must hold at every point.
  void CheckInvariants() {
    for (WindowId window : windows_) {
      if (!server_.WindowExists(window)) {
        continue;
      }
      auto tree = server_.QueryTree(window);
      ASSERT_TRUE(tree.has_value());
      // Parent-child symmetry.
      if (tree->parent != xproto::kNone) {
        auto parent_tree = server_.QueryTree(tree->parent);
        ASSERT_TRUE(parent_tree.has_value());
        int occurrences = 0;
        for (WindowId sibling : parent_tree->children) {
          if (sibling == window) {
            ++occurrences;
          }
        }
        EXPECT_EQ(occurrences, 1) << "window " << window
                                  << " not exactly once in its parent's children";
      }
      // Children unique, existing, and pointing back.
      std::set<WindowId> seen;
      for (WindowId child : tree->children) {
        EXPECT_TRUE(seen.insert(child).second);
        ASSERT_TRUE(server_.WindowExists(child));
        EXPECT_EQ(server_.QueryTree(child)->parent, window);
      }
      // RootPosition is the sum of ancestor offsets == translate to root.
      auto translated =
          server_.TranslateCoordinates(window, server_.RootWindow(0), {0, 0});
      ASSERT_TRUE(translated.has_value());
      EXPECT_EQ(*translated, server_.RootPosition(window));
      // Viewability implies every ancestor is mapped.
      if (server_.IsViewable(window)) {
        WindowId cur = tree->parent;
        while (cur != xproto::kNone) {
          EXPECT_TRUE(server_.IsViewable(cur));
          cur = server_.QueryTree(cur)->parent;
        }
      }
    }
    // The pointer window always exists.
    EXPECT_TRUE(server_.WindowExists(server_.QueryPointer().window));
  }

  Server server_;
  std::vector<ClientId> clients_;
  std::vector<WindowId> windows_;
};

TEST_P(ServerFuzzTest, RandomOperationsPreserveInvariants) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> op_dist(0, 11);
  std::uniform_int_distribution<int> coord(-20, 280);
  std::uniform_int_distribution<int> extent(1, 120);

  for (int step = 0; step < 300; ++step) {
    int op = op_dist(rng);
    switch (op) {
      case 0:
      case 1: {  // Create (twice as likely).
        WindowId parent = RandomWindow(&rng);
        WindowId created = server_.CreateWindow(
            RandomClient(&rng), parent,
            {coord(rng), coord(rng), extent(rng), extent(rng)}, 0,
            xproto::WindowClass::kInputOutput, false);
        if (created != xproto::kNone) {
          windows_.push_back(created);
        }
        break;
      }
      case 2: {  // Destroy.
        WindowId target = RandomWindow(&rng);
        server_.DestroyWindow(RandomClient(&rng), target);
        PruneDeadWindows();
        break;
      }
      case 3:
        server_.MapWindow(RandomClient(&rng), RandomWindow(&rng));
        break;
      case 4:
        server_.UnmapWindow(RandomClient(&rng), RandomWindow(&rng));
        break;
      case 5: {  // Reparent (may be refused for cycles — fine).
        server_.ReparentWindow(RandomClient(&rng), RandomWindow(&rng),
                               RandomWindow(&rng), {coord(rng) / 4, coord(rng) / 4});
        break;
      }
      case 6:
        server_.MoveWindow(RandomClient(&rng), RandomWindow(&rng),
                           {coord(rng), coord(rng)});
        break;
      case 7:
        server_.ResizeWindow(RandomClient(&rng), RandomWindow(&rng),
                             {extent(rng), extent(rng)});
        break;
      case 8:
        server_.RaiseWindow(RandomClient(&rng), RandomWindow(&rng));
        break;
      case 9:
        server_.LowerWindow(RandomClient(&rng), RandomWindow(&rng));
        break;
      case 10:
        server_.SimulateMotion({coord(rng), coord(rng)});
        break;
      case 11: {  // Properties.
        WindowId target = RandomWindow(&rng);
        xproto::AtomId prop = server_.InternAtom("P" + std::to_string(step % 7));
        server_.ChangeProperty(RandomClient(&rng), target, prop,
                               server_.InternAtom("STRING"), 8, PropMode::kReplace,
                               {'x'});
        break;
      }
    }
    // Drain queues so they do not grow unboundedly.
    for (ClientId client : clients_) {
      while (server_.NextEvent(client).has_value()) {
      }
    }
    if (step % 10 == 0) {
      CheckInvariants();
    }
  }
  CheckInvariants();
  // Rendering after arbitrary chaos must not crash and has screen size.
  xbase::Canvas canvas = server_.RenderScreen(0);
  EXPECT_EQ(canvas.width(), 300);
  EXPECT_EQ(canvas.height(), 200);

  // Disconnecting a client destroys its windows but leaves a valid tree.
  server_.Disconnect(clients_[0]);
  clients_.erase(clients_.begin());
  PruneDeadWindows();
  CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerFuzzTest, ::testing::Range(100, 112));

}  // namespace
}  // namespace xserver
