#include <gtest/gtest.h>

#include "src/base/bitmap.h"
#include "src/base/canvas.h"

namespace xbase {
namespace {

TEST(BitmapTest, SetGetBounds) {
  Bitmap bm(4, 3);
  EXPECT_FALSE(bm.Get(0, 0));
  bm.Set(0, 0, true);
  bm.Set(3, 2, true);
  EXPECT_TRUE(bm.Get(0, 0));
  EXPECT_TRUE(bm.Get(3, 2));
  // Out-of-bounds reads are false; writes are ignored.
  EXPECT_FALSE(bm.Get(-1, 0));
  EXPECT_FALSE(bm.Get(4, 0));
  bm.Set(10, 10, true);
  EXPECT_EQ(bm.PopCount(), 2);
}

TEST(BitmapTest, AsciiRoundTrip) {
  const char* art =
      "#..#\n"
      ".##.\n"
      ".##.\n"
      "#..#\n";
  auto bm = Bitmap::FromAscii(art);
  ASSERT_TRUE(bm.has_value());
  EXPECT_EQ(bm->width(), 4);
  EXPECT_EQ(bm->height(), 4);
  EXPECT_EQ(bm->ToAscii(), art);
}

TEST(BitmapTest, FromAsciiRejectsRaggedAndJunk) {
  EXPECT_FALSE(Bitmap::FromAscii("##\n#\n").has_value());
  EXPECT_FALSE(Bitmap::FromAscii("#x\n##\n").has_value());
}

TEST(BitmapTest, ToRegionMatchesPopCount) {
  auto bm = Bitmap::FromAscii(
      "##..\n"
      "##..\n"
      "..##\n"
      "..##\n");
  ASSERT_TRUE(bm.has_value());
  Region region = bm->ToRegion();
  EXPECT_EQ(region.Area(), bm->PopCount());
  EXPECT_EQ(region.RectCount(), 2u);  // Two coalesced squares.
  EXPECT_TRUE(region.Contains({0, 0}));
  EXPECT_FALSE(region.Contains({2, 0}));
  EXPECT_TRUE(region.Contains({3, 3}));
}

TEST(BitmapTest, FillRectClamps) {
  Bitmap bm(8, 8);
  bm.FillRect(Rect{-2, -2, 5, 5}, true);
  EXPECT_EQ(bm.PopCount(), 9);  // Only the in-bounds 3x3 corner.
}

TEST(BitmapTest, BuiltinsLookRight) {
  const Bitmap& logo = XLogo32();
  EXPECT_EQ(logo.width(), 32);
  EXPECT_EQ(logo.height(), 32);
  EXPECT_GT(logo.PopCount(), 0);
  EXPECT_TRUE(logo.Get(0, 0));    // Diagonal stroke.
  EXPECT_TRUE(logo.Get(31, 0));   // Anti-diagonal stroke.
  EXPECT_FALSE(logo.Get(15, 0));  // Middle top is clear.

  const Bitmap& circle = CircleMask(16);
  EXPECT_TRUE(circle.Get(8, 8));
  EXPECT_FALSE(circle.Get(0, 0));  // Corners are outside the circle.
  EXPECT_FALSE(circle.Get(15, 15));

  const Bitmap& rounded = RoundedMask16();
  EXPECT_TRUE(rounded.Get(8, 8));
  EXPECT_FALSE(rounded.Get(0, 0));
  EXPECT_TRUE(rounded.Get(2, 0));
}

TEST(CanvasTest, PutAtGetAt) {
  Canvas canvas(10, 5, '.');
  EXPECT_EQ(canvas.At(0, 0), '.');
  canvas.Put(3, 2, 'X');
  EXPECT_EQ(canvas.At(3, 2), 'X');
  EXPECT_EQ(canvas.At(-1, 0), '\0');
  EXPECT_EQ(canvas.At(10, 0), '\0');
  canvas.Put(99, 99, 'Y');  // Ignored.
}

TEST(CanvasTest, FillAndBorder) {
  Canvas canvas(8, 4, ' ');
  canvas.DrawBorder(Rect{0, 0, 8, 4});
  EXPECT_EQ(canvas.At(0, 0), '+');
  EXPECT_EQ(canvas.At(7, 3), '+');
  EXPECT_EQ(canvas.At(3, 0), '-');
  EXPECT_EQ(canvas.At(0, 2), '|');
  EXPECT_EQ(canvas.At(3, 2), ' ');
  canvas.FillRect(Rect{1, 1, 6, 2}, '#');
  EXPECT_EQ(canvas.At(3, 2), '#');
}

TEST(CanvasTest, TextAndCenteredText) {
  Canvas canvas(11, 3, ' ');
  canvas.DrawText(0, 0, "hi");
  EXPECT_EQ(canvas.At(0, 0), 'h');
  EXPECT_EQ(canvas.At(1, 0), 'i');
  canvas.DrawTextCentered(0, 11, 1, "abc");
  EXPECT_EQ(canvas.At(4, 1), 'a');
  EXPECT_EQ(canvas.At(6, 1), 'c');
  // Overlong text is clipped at the canvas edge, not wrapped.
  canvas.DrawText(9, 2, "xyz");
  EXPECT_EQ(canvas.At(9, 2), 'x');
  EXPECT_EQ(canvas.At(10, 2), 'y');
  EXPECT_EQ(canvas.At(0, 2), ' ');
}

TEST(CanvasTest, ClipRestrictsDrawing) {
  Canvas canvas(10, 10, ' ');
  canvas.SetClip(Region(Rect{2, 2, 3, 3}));
  canvas.FillRect(Rect{0, 0, 10, 10}, '#');
  EXPECT_EQ(canvas.At(2, 2), '#');
  EXPECT_EQ(canvas.At(4, 4), '#');
  EXPECT_EQ(canvas.At(5, 5), ' ');
  EXPECT_EQ(canvas.At(0, 0), ' ');
  canvas.ClearClip();
  canvas.Put(0, 0, 'Y');
  EXPECT_EQ(canvas.At(0, 0), 'Y');
}

TEST(CanvasTest, DrawBitmap) {
  Canvas canvas(6, 6, '.');
  auto bm = Bitmap::FromAscii("##\n.#\n");
  canvas.DrawBitmap(1, 1, *bm, '@');
  EXPECT_EQ(canvas.At(1, 1), '@');
  EXPECT_EQ(canvas.At(2, 1), '@');
  EXPECT_EQ(canvas.At(1, 2), '.');  // Unset bitmap pixel leaves background.
  EXPECT_EQ(canvas.At(2, 2), '@');
}

TEST(CanvasTest, ToStringShape) {
  Canvas canvas(3, 2, '.');
  EXPECT_EQ(canvas.ToString(), "...\n...\n");
}

}  // namespace
}  // namespace xbase
