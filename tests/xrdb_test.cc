#include "src/xrdb/database.h"

#include <gtest/gtest.h>

namespace xrdb {
namespace {

TEST(ParseResourceNameTest, TightAndLoose) {
  auto components = ParseResourceName("Swm*panel.openLook.resizeCorners");
  ASSERT_EQ(components.size(), 4u);
  EXPECT_EQ(components[0], (ResourceComponent{false, "Swm"}));
  EXPECT_EQ(components[1], (ResourceComponent{true, "panel"}));
  EXPECT_EQ(components[2], (ResourceComponent{false, "openLook"}));
  EXPECT_EQ(components[3], (ResourceComponent{false, "resizeCorners"}));
}

TEST(ParseResourceNameTest, LeadingStar) {
  auto components = ParseResourceName("*decoration");
  ASSERT_EQ(components.size(), 1u);
  EXPECT_TRUE(components[0].loose);
}

TEST(ParseResourceNameTest, Malformed) {
  EXPECT_TRUE(ParseResourceName("").empty());
  EXPECT_TRUE(ParseResourceName(".foo").empty());
  EXPECT_TRUE(ParseResourceName("a..b").empty());
  EXPECT_TRUE(ParseResourceName("a.b.").empty());
  EXPECT_TRUE(ParseResourceName("a b").empty());
}

TEST(ParseResourceNameTest, FormatRoundTrip) {
  const char* cases[] = {"swm.color.screen0.xclock.xclock.decoration",
                         "Swm*panel.openLook", "*a*b.c", "swm*shaped*decoration"};
  for (const char* text : cases) {
    auto components = ParseResourceName(text);
    ASSERT_FALSE(components.empty()) << text;
    EXPECT_EQ(FormatResourceName(components), text);
  }
}

class XrmMatchTest : public ::testing::Test {
 protected:
  ResourceDatabase db_;
};

TEST_F(XrmMatchTest, ExactTightMatch) {
  db_.Put("swm.color.screen0.decoration", "exact");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "exact");
}

TEST_F(XrmMatchTest, LooseBindingSkipsComponents) {
  db_.Put("swm*decoration", "loose");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "loose");
}

TEST_F(XrmMatchTest, TightRequiresAdjacency) {
  db_.Put("swm.decoration", "tight");
  EXPECT_FALSE(
      db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration").has_value());
}

TEST_F(XrmMatchTest, MatchingOutranksSkipping) {
  // Rule 1: an entry that matches a component beats one that skips it.
  db_.Put("swm*color*decoration", "matches-color");
  db_.Put("swm*decoration", "skips-color");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "matches-color");
}

TEST_F(XrmMatchTest, NameOutranksClass) {
  // Rule 2, and the paper's "Swm or swm, the latter having precedence".
  db_.Put("Swm*decoration", "by-class");
  db_.Put("swm*decoration", "by-name");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "by-name");
}

TEST_F(XrmMatchTest, ClassOutranksQuestionMark) {
  db_.Put("?*decoration", "by-question");
  db_.Put("Swm*decoration", "by-class");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "by-class");
}

TEST_F(XrmMatchTest, NameLooseOutranksClassTight) {
  // Rules apply in order: rule 2 (name vs class) dominates rule 3
  // (tight vs loose).
  db_.Put("swm*screen0*decoration", "name-loose");
  db_.Put("Swm.Color*decoration", "class-tight");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "name-loose");
}

TEST_F(XrmMatchTest, TightOutranksLooseSameName) {
  db_.Put("swm.color*decoration", "tight-color");
  db_.Put("swm*color*decoration", "loose-color");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "tight-color");
}

TEST_F(XrmMatchTest, PrecedenceIsLeftToRight) {
  // The leftmost differing component decides: matching "color" early beats
  // a more specific match later.
  db_.Put("swm.color*decoration", "early");
  db_.Put("swm*screen0.decoration", "late");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "early");
}

TEST_F(XrmMatchTest, FinalComponentMustMatch) {
  db_.Put("swm*color", "wrong-leaf");
  EXPECT_FALSE(
      db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration").has_value());
}

TEST_F(XrmMatchTest, EntryLongerThanQueryNeverMatches) {
  db_.Put("swm.color.screen0.decoration.extra", "too-long");
  EXPECT_FALSE(
      db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration").has_value());
}

TEST_F(XrmMatchTest, PaperSpecificResourceExample) {
  // "swm.monochrome.screen0.xclock.xclock.decoration: notitlepanel" (§3).
  db_.Put("swm.monochrome.screen0.xclock.xclock.decoration", "notitlepanel");
  db_.Put("swm*decoration", "default");
  EXPECT_EQ(db_.Get("swm.monochrome.screen0.xclock.xclock.decoration",
                    "Swm.Monochrome.Screen0.XClock.xclock.Decoration"),
            "notitlepanel");
  // A different client still gets the default.
  EXPECT_EQ(db_.Get("swm.monochrome.screen0.xterm.xterm.decoration",
                    "Swm.Monochrome.Screen0.XTerm.xterm.Decoration"),
            "default");
  // A different screen for xclock also falls back.
  EXPECT_EQ(db_.Get("swm.monochrome.screen1.xclock.xclock.decoration",
                    "Swm.Monochrome.Screen1.XClock.xclock.Decoration"),
            "default");
}

TEST_F(XrmMatchTest, ShapedPrefixExample) {
  // "swm*shaped*decoration: shapeit" (§5).
  db_.Put("swm*shaped*decoration", "shapeit");
  db_.Put("swm*decoration", "openLook");
  EXPECT_EQ(db_.Get("swm.color.screen0.shaped.Clock.oclock.decoration",
                    "Swm.Color.Screen0.Shaped.Clock.oclock.Decoration"),
            "shapeit");
  EXPECT_EQ(db_.Get("swm.color.screen0.Clock.oclock.decoration",
                    "Swm.Color.Screen0.Clock.oclock.Decoration"),
            "openLook");
}

TEST_F(XrmMatchTest, QuestionMarkMatchesSingleComponent) {
  db_.Put("swm.?.screen0.decoration", "any-visual");
  EXPECT_EQ(db_.Get("swm.color.screen0.decoration", "Swm.Color.Screen0.Decoration"),
            "any-visual");
  EXPECT_EQ(db_.Get("swm.monochrome.screen0.decoration",
                    "Swm.Monochrome.Screen0.Decoration"),
            "any-visual");
  // '?' cannot skip two components.
  EXPECT_FALSE(db_.Get("swm.color.extra.screen0.decoration",
                       "Swm.Color.Extra.Screen0.Decoration")
                   .has_value());
}

TEST_F(XrmMatchTest, ReplaceExistingEntry) {
  db_.Put("swm*decoration", "one");
  db_.Put("swm*decoration", "two");
  EXPECT_EQ(db_.size(), 1u);
  EXPECT_EQ(db_.Get("swm.decoration", "Swm.Decoration"), "two");
}

TEST_F(XrmMatchTest, MismatchedQueryLengthsRejected) {
  db_.Put("a.b", "v");
  EXPECT_FALSE(db_.Get(std::vector<std::string>{"a", "b"}, std::vector<std::string>{"A"})
                   .has_value());
  EXPECT_FALSE(db_.Get(std::vector<std::string>{}, std::vector<std::string>{}).has_value());
}

TEST(XrdbLoadTest, LoadFromStringBasics) {
  ResourceDatabase db;
  int loaded = db.LoadFromString(
      "! comment line\n"
      "swm*decoration: openLook\n"
      "\n"
      "swm.panner:   True  \n"
      "bad line without colon\n"
      "swm*empty:\n");
  EXPECT_EQ(loaded, 3);
  EXPECT_EQ(db.Get("swm.x.decoration", "Swm.X.Decoration"), "openLook");
  // Leading whitespace trimmed, trailing kept.
  EXPECT_EQ(db.Get("swm.panner", "Swm.Panner"), "True  ");
  EXPECT_EQ(db.Get("swm.empty", "Swm.Empty"), "");
}

TEST(XrdbLoadTest, ContinuationLines) {
  ResourceDatabase db;
  db.LoadFromString(
      "Swm*panel.openLook: \\\n"
      "  button pulldown +0+0 \\\n"
      "  panel client +0+1\n");
  auto value = db.Get("swm.panel.openLook", "Swm.Panel.OpenLook");
  ASSERT_TRUE(value.has_value());
  EXPECT_NE(value->find("button pulldown +0+0"), std::string::npos);
  EXPECT_NE(value->find("panel client +0+1"), std::string::npos);
}

TEST(XrdbLoadTest, EscapedNewlinesInValues) {
  ResourceDatabase db;
  db.LoadFromString("swm*bindings: <Btn1> : f.raise\\n<Btn2> : f.lower\n");
  auto value = db.Get("swm.bindings", "Swm.Bindings");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "<Btn1> : f.raise\n<Btn2> : f.lower");
}

TEST(XrdbLoadTest, SerializeRoundTrip) {
  ResourceDatabase db;
  db.Put("swm*a", "1");
  db.Put("swm.b.c", "two words");
  db.Put("swm*bind", "line1\nline2");
  ResourceDatabase copy;
  copy.LoadFromString(db.Serialize());
  EXPECT_EQ(copy.Serialize(), db.Serialize());
  EXPECT_EQ(copy.Get("swm.x.bind", "S.X.B"), "line1\nline2");
}

TEST(XrdbLoadTest, MergePrefersOther) {
  ResourceDatabase base;
  base.Put("swm*decoration", "default");
  base.Put("swm*keep", "kept");
  ResourceDatabase overlay;
  overlay.Put("swm*decoration", "user");
  base.Merge(overlay);
  EXPECT_EQ(base.Get("swm.decoration", "Swm.Decoration"), "user");
  EXPECT_EQ(base.Get("swm.keep", "Swm.Keep"), "kept");
}

TEST(XrdbLoadTest, EnumerateListsEverything) {
  ResourceDatabase db;
  db.Put("b*y", "2");
  db.Put("a.x", "1");
  auto entries = db.Enumerate();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "a.x");
  EXPECT_EQ(entries[1].first, "b*y");
}

TEST(XrdbLoadTest, MergeCopiesDeepTriesStructurally) {
  ResourceDatabase base;
  base.Put("swm.a.b.c.d", "deep-base");
  ResourceDatabase overlay;
  overlay.Put("swm.a.b.c.d", "deep-overlay");
  overlay.Put("swm*a.b*e", "mixed-bindings");
  overlay.Put("other.x", "fresh-subtree");
  base.Merge(overlay);
  EXPECT_EQ(base.size(), 3u);  // Replaced entries are not double-counted.
  EXPECT_EQ(base.Get("swm.a.b.c.d", "S.A.B.C.D"), "deep-overlay");
  // The loose bindings survive the structural copy: the skip search still
  // works through the merged-in subtree.
  EXPECT_EQ(base.Get("swm.q.a.b.r.e", "S.Q.A.B.R.E"), "mixed-bindings");
  EXPECT_EQ(base.Get("other.x", "Other.X"), "fresh-subtree");
  // Merge must leave the source untouched.
  EXPECT_EQ(overlay.size(), 3u);
  EXPECT_EQ(overlay.Get("swm.a.b.c.d", "S.A.B.C.D"), "deep-overlay");
}

TEST(XrdbGenerationTest, PutMergeAndLoadBumpGeneration) {
  ResourceDatabase db;
  uint64_t g0 = db.generation();
  ASSERT_TRUE(db.Put("swm*a", "1"));
  uint64_t g1 = db.generation();
  EXPECT_NE(g1, g0);
  // A failed Put does not touch the database and keeps the generation.
  EXPECT_FALSE(db.Put(".bad..specifier", "x"));
  EXPECT_EQ(db.generation(), g1);
  // Replacing an existing entry still changes the observable contents.
  ASSERT_TRUE(db.Put("swm*a", "2"));
  uint64_t g2 = db.generation();
  EXPECT_NE(g2, g1);
  ResourceDatabase other;
  other.Put("swm*b", "3");
  db.Merge(other);
  EXPECT_NE(db.generation(), g2);
  uint64_t g3 = db.generation();
  db.LoadFromString("swm*c: 4\n");
  EXPECT_NE(db.generation(), g3);
}

TEST(XrdbGenerationTest, DistinctDatabasesNeverShareGenerations) {
  // Generations come from a process-global counter, so a cache keyed on
  // one database's generation can never be confused by another database
  // (or by this database after a destroy-and-rebuild reload).
  ResourceDatabase a;
  ResourceDatabase b;
  a.Put("swm*x", "1");
  b.Put("swm*x", "1");
  EXPECT_NE(a.generation(), b.generation());
  uint64_t before_reload = a.generation();
  a = ResourceDatabase();
  a.Put("swm*x", "1");
  EXPECT_NE(a.generation(), before_reload);
}

TEST_F(XrmMatchTest, NameEqualToClassQueriesOnce) {
  // When a query level's name equals its class (common for instance-less
  // apps), the duplicate candidate is dropped, not re-searched; precedence
  // must be unaffected.
  db_.Put("swm.Target.decoration", "tight-hit");
  db_.Put("swm*Target*decoration", "loose-hit");
  EXPECT_EQ(db_.Get(std::vector<std::string>{"swm", "Target", "decoration"},
                    std::vector<std::string>{"Swm", "Target", "Decoration"}),
            "tight-hit");
  EXPECT_EQ(db_.Get(std::vector<std::string>{"swm", "x", "Target", "decoration"},
                    std::vector<std::string>{"Swm", "X", "Target", "Decoration"}),
            "loose-hit");
}

TEST_F(XrmMatchTest, QuestionQueryComponentDedupes) {
  // A literal "?" query component coincides with the wildcard probe; the
  // matcher should survive that and keep name-precedence over "?".
  db_.Put("swm.?.decoration", "wild");
  EXPECT_EQ(db_.Get(std::vector<std::string>{"swm", "?", "decoration"},
                    std::vector<std::string>{"Swm", "Q", "Decoration"}), "wild");
  EXPECT_EQ(db_.Get(std::vector<std::string>{"swm", "other", "decoration"}, std::vector<std::string>{"Swm", "Other", "Decoration"}),
            "wild");
}

TEST_F(XrmMatchTest, NeverInternedComponentsMissCleanly) {
  // Query components no entry has ever mentioned take the symbol-miss path
  // (kNoSymbol) at every level, including loose fallback through them.
  db_.Put("swm*decoration", "fallback");
  EXPECT_EQ(db_.Get(std::vector<std::string>{"swm", "zzz-unseen", "decoration"},
                    std::vector<std::string>{"Swm", "Zzz-Unseen", "Decoration"}),
            "fallback");
  EXPECT_FALSE(db_.Get(std::vector<std::string>{"totally", "unknown"},
                       std::vector<std::string>{"Totally", "Unknown"}).has_value());
}

}  // namespace
}  // namespace xrdb
