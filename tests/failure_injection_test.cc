// Failure injection: malformed configuration, hostile clients and nasty
// sequencing.  swm must diagnose (XB_LOG) and degrade, never crash or
// corrupt its bookkeeping.
#include "src/swm/swmcmd.h"
#include "src/xlib/icccm.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

class FailureTest : public SwmTest {
 protected:
  void SetUp() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal); }
  void TearDown() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning); }
};

TEST_F(FailureTest, MalformedPanelDefinitionFallsBack) {
  StartWm(
      "swm*XTerm*decoration: broken\n"
      "swm*panel.broken: button incomplete\n");  // Token count not ×3.
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);
  // Managed with the undecorated fallback; still fully functional.
  EXPECT_TRUE(server_->IsViewable(app->window()));
  wm_->Iconify(client);
  EXPECT_EQ(client->state, xproto::WmState::kIconic);
}

TEST_F(FailureTest, MalformedBindingsKeepGoodLines) {
  StartWm(
      "Swm*button.name.bindings: <Btn1> : f.raise\\n"
      "THIS IS GARBAGE\\n"
      "<Btn2> : f.iconify\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  EXPECT_EQ(client->name_object->bindings().size(), 2u);
}

TEST_F(FailureTest, BadVirtualDesktopGeometryMeansNoDesktop) {
  StartWm("swm*virtualDesktop: banana\n");
  EXPECT_EQ(wm_->vdesk(0), nullptr);
  // Management still works without a desktop.
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_NE(Managed(*app), nullptr);
}

TEST_F(FailureTest, BadIconHolderGeometryUsesDefault) {
  StartWm(
      "swm*iconHolders: box\n"
      "swm*iconHolder.box.geometry: not-a-geometry\n");
  ASSERT_EQ(wm_->icon_holders(0).size(), 1u);
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  wm_->Iconify(Managed(*app));
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app)->icon_holder, wm_->icon_holders(0)[0]);
}

TEST_F(FailureTest, GarbageSwmcmdIgnored) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xlib::Display shell(server_.get(), "s");
  for (const char* junk :
       {"", "   ", "rm -rf /", "f.", "f.raise(", ")(", "<Btn1> f.raise"}) {
    swm::SendSwmCommand(&shell, 0, junk);
    wm_->ProcessEvents();
  }
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kNormal);
  EXPECT_EQ(wm_->ClientCount(), 1u);
}

TEST_F(FailureTest, ClientDestroyedWhileIconic) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->Iconify(client);
  wm_->ProcessEvents();
  xproto::WindowId icon_window = client->icon->window();
  app->display().DestroyWindow(app->window());
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->ClientCount(), 0u);
  EXPECT_FALSE(server_->WindowExists(icon_window));  // Icon cleaned up.
}

TEST_F(FailureTest, ClientDestroyedDuringPendingSelection) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  wm_->ExecuteCommandString("f.raise", 0);  // Arms the prompt.
  ASSERT_TRUE(wm_->awaiting_target());
  xbase::Point pos = server_->RootPosition(app->window());
  app->display().DestroyWindow(app->window());
  wm_->ProcessEvents();
  // Clicking where the window used to be hits the root: prompt cancelled.
  Click({pos.x + 1, pos.y + 1});
  EXPECT_FALSE(wm_->awaiting_target());
}

TEST_F(FailureTest, ClientDestroyedMidDrag) {
  StartWm("Swm*button.name.bindings: <Btn1> : f.move\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  xbase::Point pos = ObjectRootPos(client->name_object);
  server_->SimulateMotion({pos.x + 1, pos.y + 1});
  wm_->ProcessEvents();
  server_->SimulateButton(1, true);
  wm_->ProcessEvents();
  // The client dies mid-drag.
  app->display().DestroyWindow(app->window());
  wm_->ProcessEvents();
  server_->SimulateMotion({pos.x + 20, pos.y + 10});
  server_->SimulateButton(1, false);
  wm_->ProcessEvents();  // Must not crash.
  EXPECT_EQ(wm_->ClientCount(), 0u);
}

TEST_F(FailureTest, CorruptWmHintsIgnored) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "weird";
  config.wm_class = {"weird", "Weird"};
  xlib::ClientApp app(server_.get(), config);
  // Truncated WM_HINTS bytes.
  app.display().ChangeProperty(app.window(), app.display().InternAtom("WM_HINTS"),
                               app.display().InternAtom("WM_HINTS"), 8,
                               xserver::PropMode::kReplace, {1, 2, 3});
  // Truncated WM_NORMAL_HINTS too.
  app.display().ChangeProperty(app.window(),
                               app.display().InternAtom("WM_NORMAL_HINTS"),
                               app.display().InternAtom("WM_SIZE_HINTS"), 32,
                               xserver::PropMode::kReplace, {0, 0, 0, 0});
  app.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(app.window());
  ASSERT_NE(client, nullptr);  // Defaults applied.
  EXPECT_EQ(client->size_hints.flags, 0u);
}

TEST_F(FailureTest, MalformedRestartInfoSkipped) {
  server_ = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 100, false}});
  xlib::Display seeder(server_.get(), "localhost");
  seeder.AppendStringProperty(seeder.RootWindow(0), "SWM_RESTART_INFO",
                              "swmhints -geometry 10x10+0+0 -cmd good\n"
                              "complete garbage\n"
                              "swmhints -geometry broken -cmd bad\n");
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
  ASSERT_TRUE(wm_->Start());
  EXPECT_EQ(wm_->restart_table().size(), 1u);
}

TEST_F(FailureTest, OversizedClientRequestClamped) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  app->RequestMoveResize({0, 0, 9999999, 9999999});
  wm_->ProcessEvents();
  auto geometry = server_->GetGeometry(app->window());
  EXPECT_LE(geometry->width, xproto::kMaxCoordinate);
  EXPECT_LE(geometry->height, xproto::kMaxCoordinate);
}

TEST_F(FailureTest, DeeplyNestedPanelDefinitions) {
  std::string resources = "swm*XTerm*decoration: p0\n";
  for (int i = 0; i < 20; ++i) {
    resources += "swm*panel.p" + std::to_string(i) + ": panel p" + std::to_string(i + 1) +
                 " +0+0 panel client +0+1\n";
  }
  StartWm(resources);
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_NE(Managed(*app), nullptr);
  EXPECT_TRUE(server_->IsViewable(app->window()));
}

TEST_F(FailureTest, SelfReferentialDecorationDegrades) {
  StartWm(
      "swm*XTerm*decoration: loop\n"
      "swm*panel.loop: panel loop +0+0 panel client +0+1\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(server_->IsViewable(app->window()));
}

TEST_F(FailureTest, EmptyWmClassHandled) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "anon";
  config.wm_class = {"", ""};
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  EXPECT_NE(wm_->FindClient(app.window()), nullptr);
}

TEST_F(FailureTest, RapidMapUnmapChurn) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "flappy";
  config.wm_class = {"flappy", "Flappy"};
  xlib::ClientApp app(server_.get(), config);
  for (int i = 0; i < 10; ++i) {
    app.Map();
    wm_->ProcessEvents();
    ASSERT_NE(wm_->FindClient(app.window()), nullptr) << i;
    app.Unmap();
    wm_->ProcessEvents();
    ASSERT_EQ(wm_->FindClient(app.window()), nullptr) << i;
  }
  EXPECT_EQ(server_->QueryTree(app.window())->parent, server_->RootWindow(0));
}

TEST_F(FailureTest, UnknownTemplateNameFallsBackToDefault) {
  StartWm("", "no-such-template");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->decoration_name, "swmDefault");
}

// ---- FaultPlan-driven robustness (docs/ROBUSTNESS.md) -----------------------

TEST_F(FailureTest, DestroyDuringManageUnwindsCleanly) {
  StartWm();
  // Every reparent of a foreign window into a frame kills it immediately —
  // the client destroys its window in the reparent -> SelectInput gap, where
  // no DestroyNotify can reach the WM.
  xserver::FaultPlan plan;
  plan.destroy_on_reparent_permille = 1000;
  server_->InstallFaultPlan(plan);

  auto app = Spawn("doomed", {"doomed", "Doomed"});
  EXPECT_FALSE(server_->WindowExists(app->window()));
  EXPECT_EQ(wm_->ClientCount(), 0u);          // Mid-manage rollback ran.
  EXPECT_EQ(Managed(*app), nullptr);          // No dangling ManagedClient.
  EXPECT_GE(server_->fault_counters().destroyed_windows, 1u);

  // The WM is still fully functional once the faults stop.
  server_->ClearFaultPlan();
  auto survivor = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_NE(Managed(*survivor), nullptr);
  EXPECT_EQ(wm_->ClientCount(), 1u);
}

TEST_F(FailureTest, DestroyDuringMoveResizeHealed) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);

  // The client's window dies the moment the WM configures it (the move/
  // resize-in-progress race).
  xserver::FaultPlan plan;
  plan.destroy_on_configure_permille = 1000;
  server_->InstallFaultPlan(plan);
  wm_->ResizeClient(client, {50, 40});
  server_->ClearFaultPlan();
  wm_->ProcessEvents();

  EXPECT_FALSE(server_->WindowExists(app->window()));
  EXPECT_EQ(wm_->ClientCount(), 0u);  // DestroyNotify or heal sweep cleaned up.
  EXPECT_EQ(Managed(*app), nullptr);
}

TEST_F(FailureTest, InjectedRequestFailureInvokesErrorHandler) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);

  uint64_t errors_before = wm_->x_error_count();
  xserver::FaultPlan plan;
  plan.fail_request_n = 1;  // The very next request fails out of the blue.
  server_->InstallFaultPlan(plan);
  wm_->RaiseClient(client);
  server_->ClearFaultPlan();
  wm_->ProcessEvents();

  EXPECT_EQ(server_->fault_counters().failed_requests, 1u);
  EXPECT_GT(wm_->x_error_count(), errors_before);  // Handler saw the error.
  // The window survives (the failure was spurious) and the WM still works.
  EXPECT_TRUE(server_->WindowExists(app->window()));
  EXPECT_EQ(wm_->ClientCount(), 1u);
  wm_->Iconify(client);
  EXPECT_EQ(client->state, xproto::WmState::kIconic);
}

TEST_F(FailureTest, CorruptPropertyPayloadTolerated) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ASSERT_NE(Managed(*app), nullptr);

  // Every property read returns 4KB of garbage for a while.
  xserver::FaultPlan plan;
  plan.corrupt_property_permille = 1000;
  server_->InstallFaultPlan(plan);
  xlib::SetWmName(&app->display(), app->window(), "new title");
  app->RequestMoveResize({5, 5, 40, 20});
  wm_->ProcessEvents();
  server_->ClearFaultPlan();

  EXPECT_GE(server_->fault_counters().corrupted_properties, 1u);
  EXPECT_EQ(wm_->ClientCount(), 1u);  // Bookkeeping intact.
  EXPECT_TRUE(server_->IsViewable(app->window()));
}

// ---- swmcmd channel (paper §4.5) --------------------------------------------

TEST_F(FailureTest, ConcurrentSwmcmdsAllExecute) {
  StartWm();
  Spawn("xterm", {"xterm", "XTerm"});
  xlib::Display shell_a(server_.get(), "a");
  xlib::Display shell_b(server_.get(), "b");
  // Two senders race before the WM drains: append semantics keep both.
  swm::SendSwmCommand(&shell_a, 0, "f.exec(first)");
  swm::SendSwmCommand(&shell_b, 0, "f.exec(second)");
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->executed_commands(),
            (std::vector<std::string>{"first", "second"}));
}

TEST_F(FailureTest, OversizedSwmCommandTruncated) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xlib::Display shell(server_.get(), "s");
  // A single 64KB "command": capped to 4KB at read time, then rejected by
  // the parser — never executed, never crashing.
  swm::SendSwmCommand(&shell, 0, std::string(64 * 1024, 'x'));
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->executed_commands().size(), 0u);
  EXPECT_EQ(wm_->ClientCount(), 1u);
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kNormal);
}

TEST_F(FailureTest, SwmcmdFloodRateLimited) {
  StartWm();
  Spawn("xterm", {"xterm", "XTerm"});
  xlib::Display shell(server_.get(), "s");
  for (int i = 0; i < 100; ++i) {
    swm::SendSwmCommand(&shell, 0, "f.exec(flood)");
  }
  wm_->ProcessEvents();
  // One drain executes at most the per-call budget; the flood is dropped,
  // not queued forever.
  EXPECT_LE(wm_->executed_commands().size(), 64u);
  EXPECT_GT(wm_->executed_commands().size(), 0u);
}

TEST_F(FailureTest, IconifyAlreadyIconicIsIdempotent) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->Iconify(client);
  wm_->Iconify(client);
  wm_->Deiconify(client);
  wm_->Deiconify(client);
  wm_->ProcessEvents();
  EXPECT_EQ(client->state, xproto::WmState::kNormal);
  EXPECT_TRUE(server_->IsViewable(app->window()));
}

}  // namespace
}  // namespace swm_test
