// Shared fixture for swm tests: a small simulated server, a window manager
// and helpers to spawn simulated clients.
#ifndef TESTS_SWM_TEST_UTIL_H_
#define TESTS_SWM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/swm/panner.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

namespace swm_test {

class SwmTest : public ::testing::Test {
 protected:
  // 200x100 screen; tests that want a virtual desktop pass resources.
  void StartWm(const std::string& resources = "",
               const std::string& template_name = "openlook",
               std::vector<xserver::ScreenConfig> screens = {
                   xserver::ScreenConfig{200, 100, false}}) {
    swm::WindowManager::Options options;
    options.resources = resources;
    options.template_name = template_name;
    StartWm(options, std::move(screens));
  }

  // Full-options variant (robustness tests toggle Options::self_heal).
  void StartWm(swm::WindowManager::Options options,
               std::vector<xserver::ScreenConfig> screens = {
                   xserver::ScreenConfig{200, 100, false}}) {
    // An old WM must die before its server: its destructor persists session
    // state to the server it was built on (tests may call StartWm twice).
    wm_.reset();
    server_ = std::make_unique<xserver::Server>(std::move(screens));
    wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
    ASSERT_TRUE(wm_->Start());
  }

  // Spawns a client app, maps it and lets the WM manage it.
  std::unique_ptr<xlib::ClientApp> Spawn(const std::string& name,
                                         const xproto::WmClass& wm_class,
                                         const xbase::Rect& geometry = {0, 0, 30, 10},
                                         uint32_t hint_flags = xproto::kPSize) {
    xlib::ClientAppConfig config;
    config.name = name;
    config.wm_class = wm_class;
    config.command = {name};
    config.geometry = geometry;
    config.size_hint_flags = hint_flags;
    auto app = std::make_unique<xlib::ClientApp>(server_.get(), config);
    app->Map();
    wm_->ProcessEvents();
    app->ProcessEvents();
    return app;
  }

  swm::ManagedClient* Managed(const xlib::ClientApp& app) {
    return wm_->FindClient(app.window());
  }

  // Presses and releases a button at a root position, letting the WM react.
  void Click(const xbase::Point& root_pos, int button = 1, uint32_t modifiers = 0) {
    server_->SimulateMotion(root_pos);
    wm_->ProcessEvents();
    server_->SimulateButton(button, true, modifiers);
    wm_->ProcessEvents();
    server_->SimulateButton(button, false, modifiers);
    wm_->ProcessEvents();
  }

  // Root position of an oi object's window.
  xbase::Point ObjectRootPos(const oi::Object* object) {
    return server_->RootPosition(object->window());
  }

  std::unique_ptr<xserver::Server> server_;
  std::unique_ptr<swm::WindowManager> wm_;
};

}  // namespace swm_test

#endif  // TESTS_SWM_TEST_UTIL_H_
