// The direct-on-xlib baseline window manager used by the evaluation bench.
#include "src/twm/twm.h"

#include <gtest/gtest.h>

#include "src/xlib/client_app.h"
#include "src/xserver/server.h"

namespace twm {
namespace {

class TwmTest : public ::testing::Test {
 protected:
  TwmTest() : server_({xserver::ScreenConfig{200, 100, false}}) {
    twm_ = std::make_unique<Twm>(&server_);
    EXPECT_TRUE(twm_->Start());
  }

  std::unique_ptr<xlib::ClientApp> Spawn(const std::string& name) {
    xlib::ClientAppConfig config;
    config.name = name;
    config.wm_class = {name, name};
    config.command = {name};
    config.geometry = {0, 0, 30, 10};
    auto app = std::make_unique<xlib::ClientApp>(&server_, config);
    app->Map();
    twm_->ProcessEvents();
    return app;
  }

  xserver::Server server_;
  std::unique_ptr<Twm> twm_;
};

TEST_F(TwmTest, ManagesAndDecorates) {
  auto app = Spawn("xterm");
  TwmClient* client = twm_->FindClient(app->window());
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->name, "xterm");
  EXPECT_EQ(server_.QueryTree(app->window())->parent, client->frame);
  EXPECT_TRUE(server_.IsViewable(app->window()));
  // Fixed decoration: title bar above the client.
  auto frame_geometry = server_.GetGeometry(client->frame);
  EXPECT_EQ(frame_geometry->height, 10 + Twm::kTitleHeight + 2 * Twm::kBorder);
}

TEST_F(TwmTest, SecondWmRejected) {
  Twm second(&server_);
  EXPECT_FALSE(second.Start());
}

TEST_F(TwmTest, MoveResizeRaiseLower) {
  auto a = Spawn("a");
  auto b = Spawn("b");
  TwmClient* ca = twm_->FindClient(a->window());
  TwmClient* cb = twm_->FindClient(b->window());

  twm_->MoveClient(ca, {50, 40});
  EXPECT_EQ(server_.GetGeometry(ca->frame)->origin(), (xbase::Point{50, 40}));
  twm_->ResizeClient(ca, {44, 22});
  EXPECT_EQ(server_.GetGeometry(a->window())->size(), (xbase::Size{44, 22}));

  twm_->RaiseClient(ca);
  auto order = server_.QueryTree(server_.RootWindow(0))->children;
  EXPECT_GT(std::find(order.begin(), order.end(), ca->frame),
            std::find(order.begin(), order.end(), cb->frame));
  twm_->LowerClient(ca);
  order = server_.QueryTree(server_.RootWindow(0))->children;
  EXPECT_LT(std::find(order.begin(), order.end(), ca->frame),
            std::find(order.begin(), order.end(), cb->frame));
}

TEST_F(TwmTest, IconifyDeiconify) {
  auto app = Spawn("xterm");
  TwmClient* client = twm_->FindClient(app->window());
  twm_->Iconify(client);
  EXPECT_TRUE(client->iconic);
  EXPECT_FALSE(server_.IsViewable(app->window()));
  EXPECT_TRUE(server_.IsViewable(client->icon));
  twm_->Deiconify(client);
  EXPECT_TRUE(server_.IsViewable(app->window()));
  EXPECT_FALSE(server_.IsViewable(client->icon));
}

TEST_F(TwmTest, FixedTitleBindings) {
  auto a = Spawn("a");
  auto b = Spawn("b");
  TwmClient* ca = twm_->FindClient(a->window());
  // Separate the overlapping frames so the click lands on a's title.
  twm_->MoveClient(twm_->FindClient(b->window()), {100, 50});
  // Button 3 on the title iconifies (hard-coded policy).
  xbase::Point pos = server_.RootPosition(ca->title);
  server_.SimulateMotion({pos.x + 1, pos.y + 1});
  server_.SimulateButton(3, true);
  server_.SimulateButton(3, false);
  twm_->ProcessEvents();
  EXPECT_TRUE(ca->iconic);
}

TEST_F(TwmTest, ConfigureRequestHonored) {
  auto app = Spawn("xterm");
  app->RequestMoveResize({70, 20, 50, 30});
  twm_->ProcessEvents();
  TwmClient* client = twm_->FindClient(app->window());
  EXPECT_EQ(server_.GetGeometry(app->window())->size(), (xbase::Size{50, 30}));
  EXPECT_EQ(server_.GetGeometry(client->frame)->origin(), (xbase::Point{70, 20}));
}

TEST_F(TwmTest, WithdrawAndDestroy) {
  auto a = Spawn("a");
  a->Unmap();
  twm_->ProcessEvents();
  EXPECT_EQ(twm_->FindClient(a->window()), nullptr);
  EXPECT_EQ(server_.QueryTree(a->window())->parent, server_.RootWindow(0));

  auto b = Spawn("b");
  TwmClient* cb = twm_->FindClient(b->window());
  xproto::WindowId frame = cb->frame;
  b->display().DestroyWindow(b->window());
  twm_->ProcessEvents();
  EXPECT_EQ(twm_->FindClient(b->window()), nullptr);
  EXPECT_FALSE(server_.WindowExists(frame));
}

TEST_F(TwmTest, ShutdownReparentsBack) {
  auto app = Spawn("xterm");
  twm_.reset();
  EXPECT_EQ(server_.QueryTree(app->window())->parent, server_.RootWindow(0));
}

}  // namespace
}  // namespace twm
