// Golden-screen tests: the decoration renderings are deterministic, so the
// paper's figures can be asserted byte-for-byte.
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

// Extracts rows [top, bottom) x cols [left, right) of the screen.
std::string Crop(const xbase::Canvas& canvas, int left, int top, int right, int bottom) {
  std::string out;
  for (int y = top; y < bottom; ++y) {
    for (int x = left; x < right; ++x) {
      out.push_back(canvas.At(x, y));
    }
    out.push_back('\n');
  }
  return out;
}

TEST_F(SwmTest, GoldenOpenLookDecoration) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "xclock";
  config.wm_class = {"xclock", "XClock"};
  config.command = {"xclock"};
  config.geometry = {0, 0, 36, 4};
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  swm::ManagedClient* client = wm_->FindClient(app.window());
  wm_->MoveFrameTo(client, {0, 0});
  wm_->ProcessEvents();
  wm_->RefreshAll();

  // The Figure 1 anatomy, cropped to the frame.
  const char* kGolden =
      "+---+        +--------+        +---@\n"
      "| v |        | xclock |        | @ |\n"
      "+---+        +--------+        +--+@\n"
      "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n"
      "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n"
      "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n";
  xbase::Rect frame = client->FrameGeometry();
  std::string rendered = Crop(server_->RenderScreen(0), frame.x, frame.y,
                              frame.x + frame.width, frame.y + frame.height - 1);
  // Corner handles overwrite single cells ('+' at 1x1 corners); normalize
  // by comparing with the handles' own rendering accounted for:
  // resizeUL/UR/LL/LR draw '+' at the four frame corners.
  EXPECT_EQ(rendered.size(), std::string(kGolden).size());
  int diff = 0;
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (rendered[i] != kGolden[i]) {
      ++diff;
    }
  }
  EXPECT_LE(diff, 4) << rendered;  // At most the four corner cells differ.
  // Structural anchors that must match exactly.
  EXPECT_NE(rendered.find("| v |"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("| xclock |"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("| @ |"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("xxxxxxxx"), std::string::npos) << rendered;
}

TEST_F(SwmTest, GoldenRootPanelLayout) {
  StartWm("swm*rootPanels: RootPanel\n");
  // Find the root panel content tree via its buttons.
  oi::Object* quit = nullptr;
  for (xproto::WindowId wid = 1; wid < 4000 && quit == nullptr; ++wid) {
    oi::Object* candidate = wm_->toolkit(0).FindObject(wid);
    if (candidate != nullptr && candidate->name() == "quit") {
      quit = candidate;
    }
  }
  ASSERT_NE(quit, nullptr);
  // Two rows of four buttons: quit/restart/iconify/deiconify then
  // move/resize/raise/lower — verify relative geometry, Figure 2's shape.
  oi::Panel* panel = quit->parent();
  ASSERT_NE(panel, nullptr);
  auto geometry_of = [&](const std::string& name) {
    oi::Object* object = panel->FindDescendant(name);
    EXPECT_NE(object, nullptr) << name;
    return object != nullptr ? object->geometry() : xbase::Rect{};
  };
  xbase::Rect quit_g = geometry_of("quit");
  xbase::Rect restart_g = geometry_of("restart");
  xbase::Rect iconify_g = geometry_of("iconify");
  xbase::Rect deiconify_g = geometry_of("deiconify");
  xbase::Rect move_g = geometry_of("move");
  xbase::Rect lower_g = geometry_of("lower");
  // Row 0 ordering.
  EXPECT_LT(quit_g.x, restart_g.x);
  EXPECT_LT(restart_g.x, iconify_g.x);
  EXPECT_LT(iconify_g.x, deiconify_g.x);
  EXPECT_EQ(quit_g.y, deiconify_g.y);
  // Row 1 below row 0, same column starts.
  EXPECT_GT(move_g.y, quit_g.y);
  EXPECT_EQ(move_g.x, quit_g.x);
  EXPECT_EQ(lower_g.y, move_g.y);
}

TEST_F(SwmTest, GoldenShapedClientHasNoVisibleDecoration) {
  // §5: oclock "displayed without visible decoration".
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "oclock";
  config.wm_class = {"oclock", "Clock"};
  config.command = {"oclock"};
  config.geometry = {0, 0, 16, 16};
  config.shaped = true;
  xlib::ClientApp oclock(server_.get(), config);
  oclock.Map();
  wm_->ProcessEvents();
  swm::ManagedClient* client = wm_->FindClient(oclock.window());
  wm_->MoveFrameTo(client, {20, 20});
  wm_->ProcessEvents();
  wm_->RefreshAll();

  xbase::Canvas canvas = server_->RenderScreen(0);
  // Inside the circle: the client's own background.
  EXPECT_EQ(canvas.At(28, 28), 'o');
  // Just outside the circle but inside the bounding box: the desktop shows
  // through — no frame pixels.
  EXPECT_EQ(canvas.At(20, 20), '.');
  EXPECT_EQ(canvas.At(35, 20), '.');
  // No titlebar row above.
  EXPECT_EQ(canvas.At(28, 18), '.');
}

TEST_F(SwmTest, GoldenMotifDecorationAnatomy) {
  StartWm("", "motif");
  auto app = Spawn("xedit", {"xedit", "XEdit"}, {0, 0, 30, 6});
  wm_->RefreshAll();
  std::string screen = server_->RenderScreen(0).ToString();
  EXPECT_NE(screen.find("| = |"), std::string::npos);   // menub
  EXPECT_NE(screen.find("| xedit |"), std::string::npos);
  EXPECT_NE(screen.find("| _ |"), std::string::npos);   // minimize
  EXPECT_NE(screen.find("| ^ |"), std::string::npos);   // maximize
}

TEST_F(SwmTest, RenderingIsDeterministic) {
  for (int round = 0; round < 2; ++round) {
    StartWm("swm*virtualDesktop: 400x200\nswm*panner: True\nswm*pannerScale: 8\n");
    auto a = Spawn("alpha", {"alpha", "Alpha"});
    auto b = Spawn("beta", {"beta", "Beta"});
    wm_->Iconify(Managed(*b));
    wm_->ExecuteCommandString("f.pan(40, 20)", 0);
    wm_->ProcessEvents();
    wm_->RefreshAll();
    static std::string first;
    std::string rendered = server_->RenderScreen(0).ToString();
    if (round == 0) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first);
    }
    // Clients disconnect before the server dies.
    a.reset();
    b.reset();
    wm_.reset();
    server_.reset();
  }
}

}  // namespace
}  // namespace swm_test
