// Window manager functions, invocation modes, bindings and swmcmd
// (paper §4.4, §4.5).
#include "src/swm/swmcmd.h"
#include "src/xlib/icccm.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

class FunctionsTest : public SwmTest {
 protected:
  // Executes a function the way a binding dispatch would, with no object
  // context (swmcmd-style) unless one is given.
  void Execute(const std::string& command) {
    ASSERT_TRUE(wm_->ExecuteCommandString(command, 0));
    wm_->ProcessEvents();
  }

  // Stacking order of top-level frames (bottom first).
  std::vector<xproto::WindowId> FrameOrder(xproto::WindowId parent) {
    return server_->QueryTree(parent)->children;
  }
};

TEST_F(FunctionsTest, RaiseAndLowerByClass) {
  StartWm();
  auto a = Spawn("alpha", {"alpha", "Alpha"});
  auto b = Spawn("beta", {"beta", "Beta"});
  xproto::WindowId root = server_->RootWindow(0);
  xproto::WindowId frame_a = Managed(*a)->frame->window();
  xproto::WindowId frame_b = Managed(*b)->frame->window();

  auto order = FrameOrder(root);
  EXPECT_LT(std::find(order.begin(), order.end(), frame_a),
            std::find(order.begin(), order.end(), frame_b));

  Execute("f.raise(Alpha)");
  order = FrameOrder(root);
  EXPECT_GT(std::find(order.begin(), order.end(), frame_a),
            std::find(order.begin(), order.end(), frame_b));

  Execute("f.lower(Alpha)");
  order = FrameOrder(root);
  EXPECT_LT(std::find(order.begin(), order.end(), frame_a),
            std::find(order.begin(), order.end(), frame_b));
}

TEST_F(FunctionsTest, IconifyByWindowId) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  char command[64];
  std::snprintf(command, sizeof(command), "f.iconify(#0x%x)", app->window());
  Execute(command);
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kIconic);
  // f.iconify toggles (paper's templates bind it on icons to restore).
  Execute(command);
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kNormal);
}

TEST_F(FunctionsTest, IconifyUnderPointer) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  // Park the pointer over the client window.
  xbase::Point pos = server_->RootPosition(app->window());
  server_->SimulateMotion({pos.x + 2, pos.y + 2});
  Execute("f.iconify(#$)");
  EXPECT_EQ(client->state, xproto::WmState::kIconic);
}

TEST_F(FunctionsTest, ClassMatchAppliesToAllInstances) {
  StartWm();
  auto a = Spawn("xterm1", {"xterm", "XTerm"});
  auto b = Spawn("xterm2", {"xterm", "XTerm"});
  auto c = Spawn("xclock", {"xclock", "XClock"});
  Execute("f.iconify(XTerm)");
  EXPECT_EQ(Managed(*a)->state, xproto::WmState::kIconic);
  EXPECT_EQ(Managed(*b)->state, xproto::WmState::kIconic);
  EXPECT_EQ(Managed(*c)->state, xproto::WmState::kNormal);
}

TEST_F(FunctionsTest, UnknownWindowIdIsDiagnosedNotFatal) {
  StartWm();
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  Execute("f.raise(#0xdead)");
  Execute("f.raise(#0xzz)");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST_F(FunctionsTest, MalformedSwmcmdRejected) {
  StartWm();
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  EXPECT_FALSE(wm_->ExecuteCommandString("not a function", 0));
  EXPECT_FALSE(wm_->ExecuteCommandString("", 0));
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST_F(FunctionsTest, SwmcmdPropertyChannel) {
  // The actual §4.5 protocol: a client writes SWM_COMMAND on the root.
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xlib::Display shell(server_.get(), "shellhost");
  ASSERT_TRUE(swm::SendSwmCommand(&shell, 0, "f.iconify(XTerm)"));
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kIconic);
  // The property is consumed.
  EXPECT_FALSE(shell.GetStringProperty(shell.RootWindow(0), "SWM_COMMAND").has_value());
}

TEST_F(FunctionsTest, SwmcmdPartialWriteIsBufferedUntilNewline) {
  // A shell that lands mid-line (partial write, no trailing newline) must not
  // have its fragment executed or dropped: swm buffers it until the newline
  // arrives, then runs the reassembled command.
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xlib::Display shell(server_.get(), "shellhost");
  xproto::WindowId root = shell.RootWindow(0);

  shell.SetStringProperty(root, "SWM_COMMAND", "f.iconify");
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kNormal)
      << "fragment without newline must not execute";
  // The property is still consumed (the fragment now lives in swm's buffer).
  EXPECT_FALSE(shell.GetStringProperty(root, "SWM_COMMAND").has_value());

  shell.SetStringProperty(root, "SWM_COMMAND", "(XTerm)\n");
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kIconic)
      << "completed line runs as one command";
}

TEST_F(FunctionsTest, SwmcmdWithoutTargetPromptsLikeThePaper) {
  // "swmcmd f.raise — the pointer would be changed to a question mark
  // prompting you to select a window to be raised."
  StartWm();
  auto a = Spawn("alpha", {"alpha", "Alpha"});
  auto b = Spawn("beta", {"beta", "Beta"});
  xlib::Display shell(server_.get(), "shellhost");
  swm::SendSwmCommand(&shell, 0, "f.raise");
  wm_->ProcessEvents();
  EXPECT_TRUE(wm_->awaiting_target());
  EXPECT_EQ(server_->FindWindowForTest(server_->RootWindow(0))->cursor_name,
            "question_arrow");

  // Click on alpha's frame: it gets raised, prompt ends.
  xbase::Point pos = server_->RootPosition(a->window());
  Click({pos.x + 1, pos.y + 1});
  EXPECT_FALSE(wm_->awaiting_target());
  auto order = FrameOrder(server_->RootWindow(0));
  xproto::WindowId frame_a = Managed(*a)->frame->window();
  xproto::WindowId frame_b = Managed(*b)->frame->window();
  EXPECT_GT(std::find(order.begin(), order.end(), frame_a),
            std::find(order.begin(), order.end(), frame_b));
}

TEST_F(FunctionsTest, MultipleModePromptsUntilRootClick) {
  StartWm();
  auto a = Spawn("alpha", {"alpha", "Alpha"});
  auto b = Spawn("beta", {"beta", "Beta"});
  Execute("f.iconify(multiple)");
  EXPECT_TRUE(wm_->awaiting_target());

  xbase::Point pa = server_->RootPosition(a->window());
  Click({pa.x + 1, pa.y + 1});
  EXPECT_TRUE(wm_->awaiting_target());  // Still armed.
  EXPECT_EQ(Managed(*a)->state, xproto::WmState::kIconic);

  xbase::Point pb = server_->RootPosition(b->window());
  Click({pb.x + 1, pb.y + 1});
  EXPECT_EQ(Managed(*b)->state, xproto::WmState::kIconic);

  Click({199, 99});  // Root click terminates.
  EXPECT_FALSE(wm_->awaiting_target());
}

TEST_F(FunctionsTest, BindingOnTitleButtonRaises) {
  StartWm();
  auto a = Spawn("alpha", {"alpha", "Alpha"});
  auto b = Spawn("beta", {"beta", "Beta"});
  wm_->LowerClient(Managed(*a));
  // Click button 1 on alpha's name button -> template binding f.raise.
  oi::Object* name = Managed(*a)->name_object;
  xbase::Point pos = ObjectRootPos(name);
  Click({pos.x + 1, pos.y + 1});
  auto order = FrameOrder(server_->RootWindow(0));
  xproto::WindowId frame_a = Managed(*a)->frame->window();
  xproto::WindowId frame_b = Managed(*b)->frame->window();
  EXPECT_GT(std::find(order.begin(), order.end(), frame_a),
            std::find(order.begin(), order.end(), frame_b));
}

TEST_F(FunctionsTest, SaveZoomRestoreCycle) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  ManagedClient* client = Managed(*app);
  xbase::Rect original = client->FrameGeometry();

  // The openlook template binds Btn2 on the name button to "f.save f.zoom".
  xbase::Point pos = ObjectRootPos(client->name_object);
  Click({pos.x + 1, pos.y + 1}, 2);
  xbase::Rect zoomed = client->FrameGeometry();
  EXPECT_EQ(zoomed.size(),
            (xbase::Size{200, 100}));  // Full screen including decoration.
  EXPECT_NE(zoomed, original);

  Execute("f.restore(XTerm)");
  EXPECT_EQ(client->FrameGeometry(), original);
}

TEST_F(FunctionsTest, InteractiveMoveDrag) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  xbase::Rect before = client->FrameGeometry();

  // Btn3 on the name button starts f.move (openlook template).
  xbase::Point pos = ObjectRootPos(client->name_object);
  server_->SimulateMotion({pos.x + 1, pos.y + 1});
  wm_->ProcessEvents();
  server_->SimulateButton(3, true);
  wm_->ProcessEvents();
  server_->SimulateMotion({pos.x + 31, pos.y + 16});
  wm_->ProcessEvents();
  server_->SimulateButton(3, false);
  wm_->ProcessEvents();

  xbase::Rect after = client->FrameGeometry();
  EXPECT_EQ(after.x - before.x, 30);
  EXPECT_EQ(after.y - before.y, 15);
  EXPECT_EQ(after.size(), before.size());
}

TEST_F(FunctionsTest, InteractiveResizeDrag) {
  // Bind Btn1 on the nail button to f.resize and drive a real drag.
  StartWm("Swm*button.nail.bindings: <Btn1> : f.resize\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  ManagedClient* client = Managed(*app);
  oi::Object* nail = client->frame->FindDescendant("nail");
  ASSERT_NE(nail, nullptr);
  xbase::Point pos = ObjectRootPos(nail);

  server_->SimulateMotion({pos.x + 1, pos.y + 1});
  wm_->ProcessEvents();
  server_->SimulateButton(1, true);
  wm_->ProcessEvents();
  server_->SimulateMotion({pos.x + 21, pos.y + 9});  // +20, +8.
  wm_->ProcessEvents();
  server_->SimulateButton(1, false);
  wm_->ProcessEvents();
  EXPECT_EQ(server_->GetGeometry(app->window())->size(), (xbase::Size{60, 20}));
}

TEST_F(FunctionsTest, WarpVerticalMovesPointer) {
  StartWm();
  server_->SimulateMotion({100, 50});
  Execute("f.warpVertical(-20)");
  EXPECT_EQ(server_->QueryPointer().root_pos, (xbase::Point{100, 30}));
  Execute("f.warpHorizontal(15)");
  EXPECT_EQ(server_->QueryPointer().root_pos, (xbase::Point{115, 30}));
}

TEST_F(FunctionsTest, KeyBindingWarpsPointer) {
  // "<Key>Up : f.warpVertical(-50)" from the template, with the pointer
  // over the name button (paper §4.4 example).
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xbase::Point pos = ObjectRootPos(Managed(*app)->name_object);
  server_->SimulateMotion({pos.x + 1, pos.y + 1});
  wm_->ProcessEvents();
  xbase::Point before = server_->QueryPointer().root_pos;
  server_->SimulateKey(xtb::InternKeySym("Up"), true);
  wm_->ProcessEvents();
  EXPECT_EQ(server_->QueryPointer().root_pos.y, before.y - 50);
}

TEST_F(FunctionsTest, DeleteSendsProtocolMessageWhenSupported) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xlib::SetWmProtocols(&app->display(), app->window(), {"WM_DELETE_WINDOW"});
  Execute("f.delete(XTerm)");
  app->ProcessEvents();
  EXPECT_TRUE(app->saw_delete_window());
  EXPECT_TRUE(server_->WindowExists(app->window()));  // Politeness: not killed.
}

TEST_F(FunctionsTest, DeleteDestroysWithoutProtocol) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  Execute("f.delete(XTerm)");
  EXPECT_FALSE(server_->WindowExists(app->window()));
  EXPECT_EQ(wm_->ClientCount(), 0u);
}

TEST_F(FunctionsTest, QuitRestartFlagsAndExec) {
  StartWm();
  EXPECT_FALSE(wm_->quit_requested());
  Execute("f.exec(xterm)");
  EXPECT_EQ(wm_->executed_commands(), (std::vector<std::string>{"xterm"}));
  Execute("f.restart");
  EXPECT_TRUE(wm_->restart_requested());
  Execute("f.quit");
  EXPECT_TRUE(wm_->quit_requested());
}

TEST_F(FunctionsTest, RuntimePutIsLiveAndRestartRevertsIt) {
  StartWm("swm*button.name.myMarker: from-user\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  oi::Object* name = Managed(*app)->name_object;
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->Attribute("myMarker"), "from-user");
  // A runtime Put (the swmcmd configuration channel) is visible on the
  // very next query: the toolkit's attribute cache keys on the database
  // generation, which the Put bumps.
  wm_->mutable_resources().Put("swm*button.name.myMarker", "runtime");
  EXPECT_EQ(name->Attribute("myMarker"), "runtime");
  // f.restart rebuilds the database from template + user resources once
  // dispatch settles; runtime Puts do not survive the reload.
  Execute("f.restart");
  oi::Object* reloaded = Managed(*app)->name_object;
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->Attribute("myMarker"), "from-user");
}

TEST_F(FunctionsTest, RestartReloadRedecoratesFromTemplate) {
  // A template attribute overridden at runtime (the f.setButtonLabel
  // route writes resources too) snaps back after the f.restart reload,
  // and the frame re-renders from the fresh values.
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  oi::Object* name = Managed(*app)->name_object;
  ASSERT_NE(name, nullptr);
  std::optional<std::string> original = name->Attribute("bindings");
  wm_->mutable_resources().Put("swm*button.name.bindings", "<Btn3> : f.lower");
  std::optional<std::string> overridden = name->Attribute("bindings");
  EXPECT_EQ(overridden, "<Btn3> : f.lower");
  Execute("f.restart");
  EXPECT_EQ(Managed(*app)->name_object->Attribute("bindings"), original);
}

TEST_F(FunctionsTest, MenuPopupAndItemExecution) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);

  // Btn1 on the pulldown button pops up the window menu.
  oi::Object* pulldown = client->frame->FindDescendant("pulldown");
  ASSERT_NE(pulldown, nullptr);
  xbase::Point pos = ObjectRootPos(pulldown);
  Click({pos.x + 1, pos.y + 1});

  // The menu is up; find its Close (f.iconify) item and click it.
  oi::Object* item = wm_->toolkit(0).FindObject(
      server_->QueryPointer().window);  // (not the item; search via registry)
  (void)item;
  // Locate the wmIconify item through the toolkit registry by label.
  oi::Object* found = nullptr;
  for (xproto::WindowId wid = 1; wid < 2000; ++wid) {
    oi::Object* candidate = wm_->toolkit(0).FindObject(wid);
    if (candidate != nullptr && candidate->type() == oi::ObjectType::kButton &&
        static_cast<oi::Button*>(candidate)->label() == "Close" &&
        server_->IsViewable(candidate->window())) {
      found = candidate;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << "window menu did not pop up";
  xbase::Point item_pos = ObjectRootPos(found);
  Click({item_pos.x + 1, item_pos.y + 1});

  // The menu item acted on the client the menu was popped up for.
  EXPECT_EQ(client->state, xproto::WmState::kIconic);
  // And the menu popped down.
  EXPECT_FALSE(server_->IsViewable(found->window()));
}

TEST_F(FunctionsTest, DynamicButtonLabelFunction) {
  // §4.2: buttons change appearance via window manager functions.
  StartWm(
      "Swm*button.nail.bindings: <Btn1> : f.setButtonLabel(STUCK)\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  oi::Object* nail = Managed(*app)->frame->FindDescendant("nail");
  ASSERT_NE(nail, nullptr);
  xbase::Point pos = ObjectRootPos(nail);
  Click({pos.x + 1, pos.y + 1});
  EXPECT_EQ(static_cast<oi::Button*>(nail)->label(), "STUCK");
}

TEST_F(FunctionsTest, RefreshRedrawsEverything) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  Execute("f.refresh");  // Mostly: must not crash and keeps draw lists.
  EXPECT_FALSE(server_->FindWindowForTest(Managed(*app)->name_object->window())
                   ->draw_ops.empty());
}

TEST_F(FunctionsTest, PlacesWritesXinitrcReplacement) {
  StartWm();
  auto app = Spawn("oclock", {"oclock", "Clock"}, {0, 0, 20, 20});
  Execute("f.places");
  const std::string& places = wm_->last_places();
  EXPECT_NE(places.find("swmhints"), std::string::npos);
  EXPECT_NE(places.find("oclock &"), std::string::npos);
  EXPECT_NE(places.find("exec swm"), std::string::npos);
}

TEST_F(FunctionsTest, AutoRaisePolicyFromEnterBindings) {
  // The paper's thesis: policies are data.  An auto-raise ("focus follows
  // mouse") policy needs nothing but an <Enter> binding on the decoration.
  StartWm(
      "Swm*panel.openLook.bindings: <Enter> : f.raise f.focus\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"});
  auto b = Spawn("beta", {"beta", "Beta"});
  // Separate them so entering one is unambiguous.
  wm_->MoveFrameTo(Managed(*a), {10, 10});
  wm_->MoveFrameTo(Managed(*b), {100, 50});
  wm_->ProcessEvents();
  wm_->LowerClient(Managed(*a));

  // Move the pointer onto alpha's decoration surface itself (the title-row
  // gap between the pulldown and name buttons, where the frame panel is the
  // deepest window).
  xbase::Rect frame_a = Managed(*a)->FrameGeometry();
  oi::Object* pulldown = Managed(*a)->frame->FindDescendant("pulldown");
  ASSERT_NE(pulldown, nullptr);
  server_->SimulateMotion(
      {frame_a.x + pulldown->geometry().Right() + 1, frame_a.y + 1});
  ASSERT_EQ(server_->QueryPointer().window, Managed(*a)->frame->window());
  wm_->ProcessEvents();

  auto order = FrameOrder(server_->RootWindow(0));
  xproto::WindowId fa = Managed(*a)->frame->window();
  xproto::WindowId fb = Managed(*b)->frame->window();
  EXPECT_GT(std::find(order.begin(), order.end(), fa),
            std::find(order.begin(), order.end(), fb));
  EXPECT_EQ(server_->GetInputFocus(), a->window());
}

TEST_F(FunctionsTest, MotionBindingFires) {
  StartWm("Swm*button.name.bindings: <Motion> : f.exec(moved)\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  // Motion events need a selection: objects don't select PointerMotion by
  // default, so drive it through an automatic grab (press first).
  oi::Object* name = Managed(*app)->name_object;
  xbase::Point pos = ObjectRootPos(name);
  server_->SimulateMotion({pos.x + 1, pos.y + 1});
  wm_->ProcessEvents();
  server_->SimulateButton(1, true);
  wm_->ProcessEvents();
  server_->SimulateMotion({pos.x + 2, pos.y + 1});
  wm_->ProcessEvents();
  server_->SimulateButton(1, false);
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->executed_commands(), (std::vector<std::string>{"moved"}));
}

TEST_F(FunctionsTest, UnknownFunctionIsDiagnosed) {
  StartWm();
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  int errors_before = xbase::LogErrorCount();
  Execute("f.fly");
  EXPECT_GT(xbase::LogErrorCount(), errors_before);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

}  // namespace
}  // namespace swm_test
