// Differential tests for the parallel painter (docs/RENDERING.md): the
// worker pool may only change wall-clock, never pixels.  A hundred seeded
// random WM workloads each drive randomized damage sequences through
// Server::RenderScreenInto at paint_threads 1, 2 and 4, and every
// framebuffer must stay byte-identical across thread counts.  A chaos-seed
// run keeps the pool enabled while the fault plan destroys windows mid-
// manage, and the ThreadPool itself gets a direct exercise (this file is
// what the TSan stage in tools/check.sh gates on).
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/base/thread_pool.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xlib/icccm.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace swm_test {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

struct Stack {
  std::unique_ptr<xserver::Server> server;
  std::unique_ptr<swm::WindowManager> wm;
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  int spawned = 0;
};

Stack StartStack() {
  Stack stack;
  stack.server = std::make_unique<xserver::Server>(std::vector<xserver::ScreenConfig>{
      xserver::ScreenConfig{200, 100, false}, xserver::ScreenConfig{160, 80, false}});
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  stack.wm = std::make_unique<swm::WindowManager>(stack.server.get(), options);
  EXPECT_TRUE(stack.wm->Start());
  return stack;
}

// One random client operation (same family as the frame differential test).
void ApplyOp(Stack* stack, std::mt19937_64& rng) {
  std::vector<std::unique_ptr<xlib::ClientApp>>& apps = stack->apps;
  int op = static_cast<int>(rng() % 6);
  xbase::Rect geometry{static_cast<int>(rng() % 140), static_cast<int>(rng() % 60),
                       static_cast<int>(10 + rng() % 50), static_cast<int>(6 + rng() % 24)};
  if (apps.empty() || (op == 0 && apps.size() < 5)) {
    xlib::ClientAppConfig config;
    config.name = "pp" + std::to_string(stack->spawned++);
    config.wm_class = {config.name, "ParallelPaint"};
    config.command = {config.name};
    config.geometry = geometry;
    apps.push_back(std::make_unique<xlib::ClientApp>(stack->server.get(), config));
    apps.back()->Map();
  } else {
    xlib::ClientApp& app = *apps[rng() % apps.size()];
    switch (op) {
      case 1:
        app.RequestMoveResize(geometry);
        break;
      case 2:
        app.RequestIconify();
        break;
      case 3:
        app.Map();
        break;
      default:
        xlib::SetWmName(&app.display(), app.window(),
                        "name" + std::to_string(rng() % 12));
        break;
    }
  }
  stack->wm->ProcessEvents();
  for (std::unique_ptr<xlib::ClientApp>& app : apps) {
    app->ProcessEvents();
  }
  stack->wm->ProcessEvents();
}

// A multi-band damage region somewhere on the screen.
xbase::Region RandomDamage(std::mt19937_64& rng, int width, int height) {
  xbase::Region damage;
  int bands = 3 + static_cast<int>(rng() % 6);
  for (int i = 0; i < bands; ++i) {
    damage.UnionRect(xbase::Rect{static_cast<int>(rng() % static_cast<uint64_t>(width)),
                                 static_cast<int>(rng() % static_cast<uint64_t>(height)),
                                 static_cast<int>(1 + rng() % 80),
                                 static_cast<int>(1 + rng() % 30)});
  }
  return damage;
}

TEST(ParallelPaintTest, DamageSequencesByteIdenticalAcrossThreadCounts) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kError);
  constexpr int kSequences = 100;
  constexpr int kOpsPerSequence = 6;
  for (int sequence = 0; sequence < kSequences; ++sequence) {
    std::mt19937_64 rng(0x9a11e7ULL + sequence);
    Stack stack = StartStack();
    // One incrementally-presented framebuffer per thread count; all start
    // from the same serial full render and must never diverge.
    std::vector<xbase::Canvas> frames;
    for (size_t i = 0; i < std::size(kThreadCounts); ++i) {
      frames.push_back(stack.server->RenderScreen(0));
    }
    for (int step = 0; step < kOpsPerSequence; ++step) {
      SCOPED_TRACE("sequence " + std::to_string(sequence) + " step " +
                   std::to_string(step));
      ApplyOp(&stack, rng);
      xbase::Region damage = RandomDamage(rng, 200, 100);
      std::vector<uint64_t> serial_cells;
      uint64_t parallel_total = 0;
      for (size_t i = 0; i < std::size(kThreadCounts); ++i) {
        stack.server->SetPaintThreads(kThreadCounts[i]);
        std::vector<uint64_t> worker_cells;
        stack.server->RenderScreenInto(0, damage, &frames[i], &worker_cells);
        ASSERT_EQ(worker_cells.size(), static_cast<size_t>(kThreadCounts[i]));
        uint64_t total = std::accumulate(worker_cells.begin(), worker_cells.end(),
                                         uint64_t{0});
        if (kThreadCounts[i] == 1) {
          serial_cells = worker_cells;
        } else {
          parallel_total = total;
          // The pool splits the raster work; it must not duplicate it.
          ASSERT_EQ(total, serial_cells[0]);
        }
        ASSERT_EQ(frames[i].ToString(), frames[0].ToString())
            << "paint_threads=" << kThreadCounts[i] << " diverged";
      }
      (void)parallel_total;
    }
  }
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

// Whole-screen fan-out: RenderAllScreens with the pool must match the
// serial per-screen renders exactly.
TEST(ParallelPaintTest, RenderAllScreensMatchesSerialPerScreen) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kError);
  std::mt19937_64 rng(0x5c4ee25ULL);
  Stack stack = StartStack();
  for (int step = 0; step < 10; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    ApplyOp(&stack, rng);
    stack.server->SetPaintThreads(1);
    std::vector<std::string> serial;
    for (int s = 0; s < stack.server->ScreenCount(); ++s) {
      serial.push_back(stack.server->RenderScreen(s).ToString());
    }
    for (int threads : {2, 4}) {
      stack.server->SetPaintThreads(threads);
      std::vector<xbase::Canvas> parallel = stack.server->RenderAllScreens();
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t s = 0; s < serial.size(); ++s) {
        ASSERT_EQ(parallel[s].ToString(), serial[s]) << "screen " << s << " threads "
                                                     << threads;
      }
    }
  }
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

// Options::paint_threads reaches the server when the WM starts.
TEST(ParallelPaintTest, WindowManagerPlumbsPaintThreads) {
  xserver::Server server(std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{}});
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.paint_threads = 4;
  swm::WindowManager wm(&server, options);
  ASSERT_TRUE(wm.Start());
  EXPECT_EQ(server.paint_threads(), 4);
}

// Chaos-seed run with the pool enabled: the painter must stay correct and
// crash-free while the fault plan destroys windows in the manage races.
// Every few steps the pooled incremental render is checked against the
// serial recursive render of the same tree.
TEST(ParallelPaintTest, ChaosSeedsWithPoolEnabled) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Stack stack = StartStack();
    stack.server->SetPaintThreads(4);

    xserver::FaultPlan plan;
    plan.seed = seed;
    plan.destroy_on_map_permille = 250;
    plan.destroy_on_reparent_permille = 120;
    plan.destroy_on_configure_permille = 80;
    plan.duplicate_event_permille = 60;
    stack.server->InstallFaultPlan(plan);

    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
    for (int step = 0; step < 40; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      ApplyOp(&stack, rng);
      if (step % 5 == 0) {
        // Prime with the serial full render, repaint random damage through
        // the pool: the result must still equal the full render.
        std::string expected = stack.server->RenderScreen(0).ToString();
        xbase::Canvas frame = stack.server->RenderScreen(0);
        stack.server->RenderScreenInto(0, RandomDamage(rng, 200, 100), &frame);
        ASSERT_EQ(frame.ToString(), expected);
      }
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
    stack.server->ClearFaultPlan();
    stack.wm->ProcessEvents();
  }
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

// Direct pool exercise: dynamic ticketing must run every task exactly once,
// whatever worker picks it up.  (The TSan stage relies on this test driving
// the pool's handshake hard.)
TEST(ParallelPaintTest, ThreadPoolRunsEveryTaskExactlyOnce) {
  xbase::ThreadPool pool(4);
  ASSERT_EQ(pool.thread_count(), 4);
  for (int round = 0; round < 50; ++round) {
    constexpr int kTasks = 64;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.ParallelFor(kTasks, [&](int task, int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, 4);
      hits[static_cast<size_t>(task)].fetch_add(1);
    });
    for (int task = 0; task < kTasks; ++task) {
      ASSERT_EQ(hits[static_cast<size_t>(task)].load(), 1) << "task " << task;
    }
  }
}

}  // namespace
}  // namespace swm_test
