// Fuzz-style coverage for the bindings parser: random well-formed bindings
// must round-trip exactly; random byte noise must never crash and must be
// counted as errors, with well-formed lines in the same block surviving.
#include <gtest/gtest.h>

#include <random>

#include "src/base/logging.h"
#include "src/xtb/bindings.h"

namespace xtb {
namespace {

Binding RandomBinding(std::mt19937* rng) {
  std::uniform_int_distribution<int> kind_dist(0, 5);
  std::uniform_int_distribution<int> button_dist(1, 5);
  std::uniform_int_distribution<int> mods_dist(0, 7);
  std::uniform_int_distribution<int> fn_count(1, 4);
  std::uniform_int_distribution<int> arg_count(0, 3);
  std::uniform_int_distribution<int> name_pick(0, 5);
  static const char* kFunctions[] = {"f.raise", "f.lower",        "f.iconify",
                                     "f.zoom",  "f.warpVertical", "f.panTo"};
  static const char* kKeys[] = {"Up", "Down", "F1", "a", "space", "Return"};
  static const char* kArgs[] = {"-50", "100", "multiple", "#$", "#0x1a2b", "XTerm"};

  Binding binding;
  int kind = kind_dist(*rng);
  int mods = mods_dist(*rng);
  binding.event.modifiers =
      (mods & 1 ? static_cast<uint32_t>(xproto::ModifierMask::kShift) : 0) |
      (mods & 2 ? static_cast<uint32_t>(xproto::ModifierMask::kControl) : 0) |
      (mods & 4 ? static_cast<uint32_t>(xproto::ModifierMask::kMod1) : 0);
  switch (kind) {
    case 0:
      binding.event.kind = EventKind::kButtonPress;
      binding.event.button = button_dist(*rng);
      break;
    case 1:
      binding.event.kind = EventKind::kButtonRelease;
      binding.event.button = button_dist(*rng);
      break;
    case 2:
      binding.event.kind = EventKind::kKeyPress;
      binding.event.keysym = InternKeySym(kKeys[name_pick(*rng)]);
      break;
    case 3:
      binding.event.kind = EventKind::kEnter;
      break;
    case 4:
      binding.event.kind = EventKind::kLeave;
      break;
    default:
      binding.event.kind = EventKind::kMotion;
      break;
  }
  int functions = fn_count(*rng);
  for (int i = 0; i < functions; ++i) {
    FunctionCall fn;
    fn.name = kFunctions[name_pick(*rng)];
    int args = arg_count(*rng);
    for (int a = 0; a < args; ++a) {
      fn.args.push_back(kArgs[name_pick(*rng)]);
    }
    binding.functions.push_back(std::move(fn));
  }
  return binding;
}

class BindingFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BindingFuzzTest, RandomBindingsRoundTrip) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::vector<Binding> bindings;
    std::uniform_int_distribution<int> count(1, 6);
    int n = count(rng);
    for (int i = 0; i < n; ++i) {
      bindings.push_back(RandomBinding(&rng));
    }
    std::string text = FormatBindings(bindings);
    ParseResult reparsed = ParseBindings(text);
    EXPECT_EQ(reparsed.errors, 0) << text;
    ASSERT_EQ(reparsed.bindings.size(), bindings.size()) << text;
    EXPECT_EQ(reparsed.bindings, bindings) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BindingFuzzTest, ::testing::Range(1, 11));

TEST(BindingNoiseTest, RandomBytesNeverCrash) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::mt19937 rng(12345);
  std::uniform_int_distribution<int> length(0, 120);
  std::uniform_int_distribution<int> byte(32, 126);
  for (int round = 0; round < 500; ++round) {
    std::string noise;
    int n = length(rng);
    for (int i = 0; i < n; ++i) {
      noise.push_back(static_cast<char>(byte(rng)));
    }
    ParseResult result = ParseBindings(noise);
    // Whatever parsed must re-parse identically (idempotence on survivors).
    std::string formatted = FormatBindings(result.bindings);
    EXPECT_EQ(ParseBindings(formatted).bindings, result.bindings);
  }
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST(BindingNoiseTest, NoiseAmongGoodLines) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::mt19937 rng(999);
  std::uniform_int_distribution<int> byte(33, 126);
  for (int round = 0; round < 50; ++round) {
    std::string noise;
    for (int i = 0; i < 20; ++i) {
      noise.push_back(static_cast<char>(byte(rng)));
    }
    std::string text = "<Btn1> : f.raise\n" + noise + "\n<Btn2> : f.lower\n";
    ParseResult result = ParseBindings(text);
    EXPECT_GE(result.bindings.size(), 2u);
    EXPECT_EQ(result.bindings.front().functions[0].name, "f.raise");
    EXPECT_EQ(result.bindings.back().functions[0].name, "f.lower");
  }
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

}  // namespace
}  // namespace xtb
