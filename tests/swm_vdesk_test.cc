// The Virtual Desktop, sticky windows, panner and ICCCM positioning
// (paper §6).
#include "src/xlib/icccm.h"
#include "src/xproto/hints.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;
using swm::Panner;
using swm::VirtualDesktop;

constexpr char kVdeskResources[] =
    "swm*virtualDesktop: 800x400\n"
    "swm*panner: False\n";

class VdeskTest : public SwmTest {};

TEST_F(VdeskTest, DesktopCreatedWithVrootProperty) {
  StartWm(kVdeskResources);
  VirtualDesktop* desk = wm_->vdesk(0);
  ASSERT_NE(desk, nullptr);
  EXPECT_EQ(desk->size(), (xbase::Size{800, 400}));
  EXPECT_EQ(desk->offset(), (xbase::Point{0, 0}));
  // Clients can discover the virtual root via __SWM_VROOT.
  EXPECT_EQ(wm_->display().GetWindowIdProperty(desk->window(), xproto::kAtomSwmVroot),
            desk->window());
  // The desktop window is a mapped child of the real root.
  EXPECT_TRUE(server_->IsViewable(desk->window()));
  EXPECT_EQ(server_->QueryTree(desk->window())->parent, server_->RootWindow(0));
}

TEST_F(VdeskTest, NoVdeskWithoutResource) {
  StartWm();
  EXPECT_EQ(wm_->vdesk(0), nullptr);
}

TEST_F(VdeskTest, SizeClampedToProtocolLimit) {
  // "the size of the Virtual Desktop is limited only by the usable area of
  // an X window, 32767 x 32767 pixels" (§6.1).
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  StartWm("swm*virtualDesktop: 99999x99999\nswm*panner: False\n");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  ASSERT_NE(wm_->vdesk(0), nullptr);
  EXPECT_EQ(wm_->vdesk(0)->size(), (xbase::Size{32767, 32767}));
}

TEST_F(VdeskTest, PanClampsToEdges) {
  StartWm(kVdeskResources);
  VirtualDesktop* desk = wm_->vdesk(0);
  EXPECT_TRUE(desk->PanTo({100, 50}));
  EXPECT_EQ(desk->offset(), (xbase::Point{100, 50}));
  // Beyond the far edge clamps to size - viewport (800-200, 400-100).
  desk->PanTo({10000, 10000});
  EXPECT_EQ(desk->offset(), (xbase::Point{600, 300}));
  desk->PanTo({-50, -50});
  EXPECT_EQ(desk->offset(), (xbase::Point{0, 0}));
  EXPECT_FALSE(desk->PanTo({0, 0}));  // No change.
}

TEST_F(VdeskTest, PanningMovesDesktopWindowNotClients) {
  StartWm(kVdeskResources);
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  xbase::Point desktop_pos = client->ClientDesktopPosition();
  int notify_count_before = app->configure_notify_count();

  wm_->ExecuteCommandString("f.panTo(100, 50)", 0);
  wm_->ProcessEvents();
  app->ProcessEvents();

  // The client did not move with respect to its (virtual) root: no
  // ConfigureNotify, same desktop position (§6.3.1).
  EXPECT_EQ(client->ClientDesktopPosition(), desktop_pos);
  EXPECT_EQ(app->configure_notify_count(), notify_count_before);
  // But its real-root position shifted by the pan.
  EXPECT_EQ(server_->RootPosition(app->window()),
            (xbase::Point{desktop_pos.x - 100, desktop_pos.y - 50}));
}

TEST_F(VdeskTest, SwmRootPropertyOnClients) {
  StartWm(kVdeskResources);
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  // §6.3.1: swm places a property naming the effective root.
  EXPECT_EQ(app->display().GetWindowIdProperty(app->window(), xproto::kAtomSwmRoot),
            wm_->vdesk(0)->window());
  EXPECT_EQ(app->EffectiveRootForPopups(), wm_->vdesk(0)->window());
}

TEST_F(VdeskTest, StickyWindowStaysOnGlass) {
  // §6.2: sticky windows appear stuck to the glass; panning leaves them.
  StartWm(std::string(kVdeskResources) + "swm*XClock*sticky: True\n");
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* sticky = Managed(*clock);
  ManagedClient* normal = Managed(*term);
  ASSERT_TRUE(sticky->sticky);
  ASSERT_FALSE(normal->sticky);
  // Sticky frames are children of the real root.
  EXPECT_EQ(server_->QueryTree(sticky->frame->window())->parent, server_->RootWindow(0));
  EXPECT_EQ(server_->QueryTree(normal->frame->window())->parent,
            wm_->vdesk(0)->window());
  // Sticky clients' SWM_ROOT names the real root.
  EXPECT_EQ(clock->display().GetWindowIdProperty(clock->window(), xproto::kAtomSwmRoot),
            server_->RootWindow(0));

  xbase::Point sticky_screen = server_->RootPosition(clock->window());
  xbase::Point normal_screen = server_->RootPosition(term->window());
  wm_->ExecuteCommandString("f.pan(120, 60)", 0);
  wm_->ProcessEvents();
  EXPECT_EQ(server_->RootPosition(clock->window()), sticky_screen);
  EXPECT_EQ(server_->RootPosition(term->window()),
            (xbase::Point{normal_screen.x - 120, normal_screen.y - 60}));
}

TEST_F(VdeskTest, StickyDependentDecoration) {
  // §6.2: "decorations can be dependent on whether or not the client window
  // is sticky".
  StartWm(std::string(kVdeskResources) +
          "swm*XClock*sticky: True\n"
          "swm*sticky*decoration: shapeit\n");
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_EQ(Managed(*clock)->decoration_name, "shapeit");
  EXPECT_EQ(Managed(*term)->decoration_name, "openLook");
}

TEST_F(VdeskTest, InteractiveStickToggleReparentsAndKeepsScreenPosition) {
  StartWm(kVdeskResources);
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  wm_->vdesk(0)->PanTo({50, 20});
  ManagedClient* client = Managed(*app);
  xbase::Point screen_before = server_->RootPosition(app->window());

  wm_->SetSticky(client, true);
  wm_->ProcessEvents();
  client = wm_->FindClient(app->window());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->sticky);
  EXPECT_EQ(server_->QueryTree(client->frame->window())->parent,
            server_->RootWindow(0));
  EXPECT_EQ(server_->RootPosition(app->window()), screen_before);
  EXPECT_EQ(app->display().GetWindowIdProperty(app->window(), xproto::kAtomSwmRoot),
            server_->RootWindow(0));

  // Pan: the stuck window must not move on screen.
  wm_->vdesk(0)->PanTo({150, 80});
  EXPECT_EQ(server_->RootPosition(app->window()), screen_before);

  wm_->SetSticky(client, false);
  wm_->ProcessEvents();
  client = wm_->FindClient(app->window());
  EXPECT_FALSE(client->sticky);
  EXPECT_EQ(server_->QueryTree(client->frame->window())->parent,
            wm_->vdesk(0)->window());
  EXPECT_EQ(server_->RootPosition(app->window()), screen_before);
  EXPECT_EQ(app->display().GetWindowIdProperty(app->window(), xproto::kAtomSwmRoot),
            wm_->vdesk(0)->window());
}

TEST_F(VdeskTest, NailButtonTogglesSticky) {
  StartWm(kVdeskResources);
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  oi::Object* nail = Managed(*app)->frame->FindDescendant("nail");
  ASSERT_NE(nail, nullptr);
  xbase::Point pos = ObjectRootPos(nail);
  Click({pos.x + 1, pos.y + 1});
  EXPECT_TRUE(wm_->FindClient(app->window())->sticky);
}

TEST_F(VdeskTest, UsPositionIsDesktopAbsolute) {
  // §6.3.2: "If USPosition hints are specified, the window is placed at the
  // absolute location requested ... even if the coordinates on the desktop
  // are not currently visible."
  StartWm(kVdeskResources);
  wm_->vdesk(0)->PanTo({100, 50});
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {500, 300, 30, 10},
                   xproto::kUSPosition | xproto::kUSSize);
  EXPECT_EQ(Managed(*app)->ClientDesktopPosition(), (xbase::Point{500, 300}));
}

TEST_F(VdeskTest, PPositionIsViewportRelative) {
  // §6.3.2: "If PPosition hints are specified, the window coordinates are
  // assumed to be relative to the current visible portion".  The paper's
  // example: desktop at 1000,1000; +100+100 -> 1100,1100.
  StartWm("swm*virtualDesktop: 2000x2000\nswm*panner: False\n");
  wm_->vdesk(0)->PanTo({1000, 1000});
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {100, 100, 30, 10},
                   xproto::kPPosition | xproto::kPSize);
  EXPECT_EQ(Managed(*app)->ClientDesktopPosition(), (xbase::Point{1100, 1100}));
  // And a USPosition window at +100+100 lands at 100,100.
  auto app2 = Spawn("xclock", {"xclock", "XClock"}, {100, 100, 30, 10},
                    xproto::kUSPosition | xproto::kUSSize);
  EXPECT_EQ(Managed(*app2)->ClientDesktopPosition(), (xbase::Point{100, 100}));
}

TEST_F(VdeskTest, OffscreenUsPositionWindowIsNotVisible) {
  StartWm(kVdeskResources);
  auto app = Spawn("faraway", {"faraway", "FarAway"}, {600, 300, 30, 10},
                   xproto::kUSPosition | xproto::kUSSize);
  ManagedClient* client = Managed(*app);
  EXPECT_FALSE(wm_->vdesk(0)->IsVisible(client->FrameGeometry()));
  // Panning there makes it visible.
  wm_->vdesk(0)->PanTo({500, 250});
  EXPECT_TRUE(wm_->vdesk(0)->IsVisible(client->FrameGeometry()));
}

TEST_F(VdeskTest, DesktopResizeReclampsOffset) {
  StartWm(kVdeskResources);
  VirtualDesktop* desk = wm_->vdesk(0);
  desk->PanTo({600, 300});
  desk->Resize({400, 200});
  EXPECT_EQ(desk->size(), (xbase::Size{400, 200}));
  EXPECT_EQ(desk->offset(), (xbase::Point{200, 100}));
}

// ---- Property-style sweep: panning invariants -------------------------------------

struct PanCase {
  int x;
  int y;
};

class PanInvariantTest : public SwmTest,
                         public ::testing::WithParamInterface<PanCase> {};

TEST_P(PanInvariantTest, StickyScreenFixedNormalDesktopFixed) {
  StartWm(std::string(kVdeskResources) + "swm*XClock*sticky: True\n");
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  xbase::Point sticky_screen = server_->RootPosition(clock->window());
  xbase::Point normal_desktop = Managed(*term)->ClientDesktopPosition();

  wm_->vdesk(0)->PanTo({GetParam().x, GetParam().y});
  xbase::Point offset = wm_->vdesk(0)->offset();

  // Invariant 1: sticky windows' screen position never changes.
  EXPECT_EQ(server_->RootPosition(clock->window()), sticky_screen);
  // Invariant 2: normal windows' desktop position never changes.
  EXPECT_EQ(Managed(*term)->ClientDesktopPosition(), normal_desktop);
  // Invariant 3: screen position == desktop position - offset.
  EXPECT_EQ(server_->RootPosition(term->window()),
            (xbase::Point{normal_desktop.x - offset.x, normal_desktop.y - offset.y}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PanInvariantTest,
                         ::testing::Values(PanCase{0, 0}, PanCase{1, 1},
                                           PanCase{100, 50}, PanCase{600, 300},
                                           PanCase{9999, 9999}, PanCase{333, 17}));

// ---- Panner ----------------------------------------------------------------------

class PannerTest : public SwmTest {
 protected:
  void StartWithPanner() {
    StartWm(
        "swm*virtualDesktop: 800x400\n"
        "swm*panner: True\n"
        "swm*pannerScale: 10\n");
    panner_ = wm_->panner(0);
    ASSERT_NE(panner_, nullptr);
    wm_->ProcessEvents();
  }

  Panner* panner_ = nullptr;
};

TEST_F(PannerTest, PannerIsManagedAndSticky) {
  StartWithPanner();
  // "The panner is reparented so it can be moved, iconified, and resized
  // just like any other client window" (§6.1) — and it must be sticky so it
  // does not scroll off the display.
  ManagedClient* client = wm_->FindClient(panner_->window());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->sticky);
  EXPECT_TRUE(client->is_internal);
  EXPECT_EQ(server_->QueryTree(client->frame->window())->parent,
            server_->RootWindow(0));
  xbase::Point screen_pos = server_->RootPosition(panner_->window());
  wm_->vdesk(0)->PanTo({200, 100});
  EXPECT_EQ(server_->RootPosition(panner_->window()), screen_pos);
}

TEST_F(PannerTest, Button1PansDesktop) {
  StartWithPanner();
  xbase::Point origin = server_->RootPosition(panner_->window());
  // Click near the middle of the panner: the viewport centers there.
  Click({origin.x + 40, origin.y + 20});
  xbase::Point offset = wm_->vdesk(0)->offset();
  // Desktop point (400,200) centered: offset = (400-100, 200-50).
  EXPECT_EQ(offset, (xbase::Point{300, 150}));
}

TEST_F(PannerTest, Button2MovesMiniatureWindow) {
  StartWithPanner();
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 60, 30});
  ManagedClient* client = Managed(*app);
  wm_->MoveFrameTo(client, {100, 100});
  wm_->ProcessEvents();

  xbase::Point origin = server_->RootPosition(panner_->window());
  // Press on the miniature at desktop(100,100) -> panner cell (10,10).
  server_->SimulateMotion({origin.x + 10, origin.y + 10});
  wm_->ProcessEvents();
  server_->SimulateButton(2, true);
  wm_->ProcessEvents();
  EXPECT_TRUE(panner_->dragging_window());
  // Release at cell (40, 20) -> desktop (400, 200).
  server_->SimulateMotion({origin.x + 40, origin.y + 20});
  wm_->ProcessEvents();
  server_->SimulateButton(2, false);
  wm_->ProcessEvents();
  EXPECT_FALSE(panner_->dragging_window());
  EXPECT_EQ(client->FrameGeometry().origin(), (xbase::Point{400, 200}));
}

TEST_F(PannerTest, ResizingPannerResizesDesktop) {
  StartWithPanner();
  ManagedClient* client = wm_->FindClient(panner_->window());
  ASSERT_NE(client, nullptr);
  // Resize the panner client to 100x60 cells => desktop 1000x600.
  wm_->ResizeClient(client, {100, 60});
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->vdesk(0)->size(), (xbase::Size{1000, 600}));
}

TEST_F(PannerTest, MiniatureReflectsWindows) {
  StartWithPanner();
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 60, 30});
  wm_->MoveFrameTo(Managed(*app), {100, 100});
  wm_->ProcessEvents();
  // The panner's draw list contains a box at (10,10) (scale 10).
  const xserver::WindowRec* rec = server_->FindWindowForTest(panner_->window());
  ASSERT_NE(rec, nullptr);
  bool found = false;
  for (const xserver::DrawOp& op : rec->draw_ops) {
    if (op.kind == xserver::DrawOp::Kind::kFillRect && op.rect.x == 10 &&
        op.rect.y == 10) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace swm_test
