// Transport-fault chaos (docs/PROTOCOL.md, "Transport fault injection"):
// 24 seeds drive framed socketpair connections through a randomized client
// workload while the fault plan shreds the transport — short reads, short
// writes, EINTR storms, mid-frame connection resets, mutated reply bytes —
// on top of the PR-6 wire mutations.  The contract: the server never
// crashes, never leaks (ASan/UBSan run this in tools/check.sh), closes
// misbehaving connections with a typed reason, and keeps serving healthy
// clients afterward.  Same seed, same storm.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/logging.h"
#include "src/xlib/display.h"
#include "src/xproto/transport.h"
#include "src/xproto/wire.h"
#include "src/xserver/connection.h"
#include "src/xserver/faults.h"
#include "src/xserver/server.h"

namespace xserver {
namespace {

using xproto::Reply;
using xproto::WindowId;
using xproto::WireClientEndpoint;

// Aggregated across all seeds; the environment teardown below (which runs
// after every test) asserts the storm actually hit every fault class.
FaultCounters g_transport_totals;
FaultCounters g_server_totals;
uint64_t g_connections_closed_by_fault = 0;

void Accumulate(const FaultCounters& from, FaultCounters* into) {
  into->short_reads += from.short_reads;
  into->short_writes += from.short_writes;
  into->eintr_retries += from.eintr_retries;
  into->connection_resets += from.connection_resets;
  into->mutated_replies += from.mutated_replies;
  into->bitflipped_requests += from.bitflipped_requests;
  into->length_lies += from.length_lies;
  into->truncated_requests += from.truncated_requests;
  into->scrambled_opcodes += from.scrambled_opcodes;
  into->failed_requests += from.failed_requests;
}

class TransportChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal); }
  void TearDown() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning); }
};

TEST_P(TransportChaosTest, SurvivesSeededTransportStorm) {
  const uint64_t seed = GetParam();
  Server server;

  FaultPlan plan;
  plan.seed = seed;
  // Wire mutations (pre-parser, inside DispatchBytes).
  plan.bitflip_request_permille = 60;
  plan.lie_length_permille = 40;
  plan.truncate_request_permille = 40;
  plan.scramble_opcode_permille = 40;
  // Transport faults (on the channel bytes, inside Connection).
  plan.short_read_permille = 250;
  plan.short_write_permille = 250;
  plan.eintr_storm_permille = 150;
  plan.reset_midframe_permille = seed % 2 == 0 ? 100 : 0;
  plan.mutate_reply_permille = 120;
  server.InstallFaultPlan(plan);

  // A third of the seeds run the parallel painter during the storm so TSan
  // sees transport pumping interleaved with multi-threaded rendering.
  const bool painted = seed % 3 == 0;
  if (painted) {
    server.SetPaintThreads(2);
  }

  // Two framed connections share the storm; a protocol error or mid-frame
  // reset on one must never disturb the other beyond its own teardown.
  struct Peer {
    std::unique_ptr<Connection> conn;
    std::unique_ptr<WireClientEndpoint> ep;
    std::vector<WindowId> windows;
  };
  std::vector<Peer> peers;
  for (int i = 0; i < 2; ++i) {
    xproto::ChannelPair pair = xproto::MakeSocketPair();
    Peer peer;
    peer.conn = std::make_unique<Connection>(&server, std::move(pair.server), "chaos-peer");
    peer.conn->InstallTransportFaults(plan);
    peer.conn->Establish();
    peer.ep = std::make_unique<WireClientEndpoint>(std::move(pair.client));
    peers.push_back(std::move(peer));
  }

  FaultRng workload(seed * 77 + 13);
  for (int step = 0; step < 120; ++step) {
    Peer& peer = peers[static_cast<size_t>(step) % peers.size()];
    if (peer.conn->state() == ConnectionState::kClosed) {
      continue;
    }
    switch (workload.Range(0, 6)) {
      case 0:
        peer.ep->QueueRequest(xproto::CreateWindowRequest{
            .parent = server.RootWindow(0),
            .geometry = {workload.Range(0, 200), workload.Range(0, 150),
                         workload.Range(1, 300), workload.Range(1, 200)}});
        break;
      case 1: {
        auto tree = server.QueryTree(server.RootWindow(0));
        if (tree && !tree->children.empty()) {
          WindowId w = tree->children[static_cast<size_t>(workload.Range(
              0, static_cast<int>(tree->children.size()) - 1))];
          peer.ep->QueueRequest(xproto::MapWindowRequest{.window = w});
        }
        break;
      }
      case 2:
        peer.ep->QueueRequest(xproto::QueryTreeRequest{.window = server.RootWindow(0)});
        break;
      case 3:
        peer.ep->QueueRequest(xproto::GetGeometryRequest{
            .window = static_cast<WindowId>(workload.Range(1, 64))});
        break;
      case 4:
        peer.ep->QueueRequest(xproto::InternAtomRequest{
            .name = std::string(static_cast<size_t>(workload.Range(1, 48)), 'A')});
        break;
      case 5:
        peer.ep->QueueRequest(xproto::GetPropertyRequest{
            .window = server.RootWindow(0),
            .property = static_cast<xproto::AtomId>(workload.Range(1, 40))});
        break;
      case 6:
        peer.ep->QueueRequest(xproto::TranslateCoordinatesRequest{
            .src = server.RootWindow(0),
            .dst = server.RootWindow(0),
            .point = {workload.Range(-50, 50), workload.Range(-50, 50)}});
        break;
    }
    peer.ep->Flush();
    peer.conn->Pump();
    peer.ep->Poll();
    // Drain whatever made it back; mutated replies may fail to decode —
    // that is the client's problem, never the server's.
    while (std::optional<std::vector<uint8_t>> frame = peer.ep->NextFrame()) {
      if (!frame->empty() && (*frame)[0] == 1) {
        Reply reply;
        xproto::ParseError error;
        (void)xproto::DecodeReply(*frame, &reply, &error);
      }
    }
    if (painted && step % 24 == 0) {
      (void)server.RenderScreen(0);
    }
  }

  // One seed in four kills a peer mid-request frame on top of everything.
  if (seed % 4 == 1 && peers[0].conn->state() != ConnectionState::kClosed) {
    peers[0].ep->QueueRequest(
        xproto::CreateWindowRequest{.parent = server.RootWindow(0),
                                    .geometry = {0, 0, 10, 10}});
    peers[0].ep->CloseMidFrame();
    for (int i = 0; i < 8 && peers[0].conn->state() != ConnectionState::kClosed; ++i) {
      peers[0].conn->Pump();
    }
    EXPECT_EQ(peers[0].conn->state(), ConnectionState::kClosed);
  }

  // Teardown: whatever the storm left open drains gracefully.
  for (Peer& peer : peers) {
    Accumulate(peer.conn->transport_fault_counters(), &g_transport_totals);
    if (peer.conn->state() != ConnectionState::kClosed) {
      peer.conn->BeginDrain();
      for (int i = 0; i < 16 && peer.conn->state() != ConnectionState::kClosed; ++i) {
        peer.ep->Poll();
        peer.conn->Pump();
      }
      peer.conn->Close(CloseReason::kGracefulDrain);
    } else if (peer.conn->close_reason() != CloseReason::kGracefulDrain &&
               peer.conn->close_reason() != CloseReason::kPeerClosed) {
      ++g_connections_closed_by_fault;
    }
    // Every close reason is typed — never "unknown".
    EXPECT_STRNE(CloseReasonName(peer.conn->close_reason()), "");
  }
  Accumulate(server.fault_counters(), &g_server_totals);

  // The server still serves a healthy client after the storm (with the
  // faults switched off — the weather cleared, the server must have too).
  server.InstallFaultPlan(FaultPlan{});
  xlib::Display healthy(&server, "after-the-storm");
  healthy.set_wire_mode(true);
  WindowId window = healthy.CreateWindow(server.RootWindow(0), {4, 4, 80, 60});
  ASSERT_NE(window, xproto::kNone);
  ASSERT_TRUE(healthy.MapWindow(window));
  auto geometry = healthy.GetGeometry(window);
  ASSERT_TRUE(geometry.has_value());
  EXPECT_EQ(*geometry, (xbase::Rect{4, 4, 80, 60}));
  EXPECT_EQ(healthy.wire_stats().wire_fallbacks, 0u);
  EXPECT_TRUE(server.WindowExists(window));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportChaosTest, ::testing::Range<uint64_t>(1, 25));

// Runs after all 24 seeds (gtest tears environments down after the last
// test): across the suite the storm must actually have exercised every
// fault class it advertises — a chaos harness that injects nothing is a
// green light lying about coverage.
class StormCoverageCheck : public ::testing::Environment {
 public:
  void TearDown() override {
    EXPECT_GT(g_transport_totals.short_reads, 0u);
    EXPECT_GT(g_transport_totals.short_writes, 0u);
    EXPECT_GT(g_transport_totals.eintr_retries, 0u);
    EXPECT_GT(g_transport_totals.connection_resets, 0u);
    EXPECT_GT(g_transport_totals.mutated_replies, 0u);
    EXPECT_GT(g_server_totals.WireMutations(), 0u);
    EXPECT_GT(g_connections_closed_by_fault, 0u);
  }
};

const ::testing::Environment* const g_coverage_check =
    ::testing::AddGlobalTestEnvironment(new StormCoverageCheck);

}  // namespace
}  // namespace xserver
