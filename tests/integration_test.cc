// End-to-end scenarios spanning server, xlib, toolkit and swm: the rooms
// workflow the paper motivates, figure renderings, and cross-feature
// interactions.
#include "src/swm/swmcmd.h"
#include "src/swm/templates.h"
#include "src/xlib/icccm.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

TEST_F(SwmTest, RoomsWorkflowOnVirtualDesktop) {
  // The paper's §6 motivation: group windows into quadrants of the desktop
  // ("a rooms like environment") and pan between them, with sticky tools
  // visible everywhere.
  StartWm(
      "swm*virtualDesktop: 400x200\n"
      "swm*panner: False\n"
      "swm*XClock*sticky: True\n");
  // Room 1 (top-left): an editor. Room 2 (top-right): mail.
  auto editor = Spawn("editor", {"editor", "Editor"}, {0, 0, 40, 12});
  auto mail = Spawn("mail", {"mail", "Mail"}, {0, 0, 40, 12});
  auto clock = Spawn("xclock", {"xclock", "XClock"}, {0, 0, 12, 5});
  wm_->MoveFrameTo(Managed(*editor), {10, 10});
  wm_->MoveFrameTo(Managed(*mail), {210, 10});
  wm_->ProcessEvents();

  // Room 1 visible: editor on screen, mail not.
  auto* desk = wm_->vdesk(0);
  EXPECT_TRUE(desk->IsVisible(Managed(*editor)->FrameGeometry()));
  EXPECT_FALSE(desk->IsVisible(Managed(*mail)->FrameGeometry()));
  EXPECT_TRUE(server_->IsViewable(clock->window()));

  // Pan to room 2.
  wm_->ExecuteCommandString("f.panTo(200, 0)", 0);
  wm_->ProcessEvents();
  EXPECT_FALSE(desk->IsVisible(Managed(*editor)->FrameGeometry()));
  EXPECT_TRUE(desk->IsVisible(Managed(*mail)->FrameGeometry()));
  // The sticky clock is still on the glass at the same place.
  xbase::Point clock_pos = server_->RootPosition(clock->window());
  EXPECT_TRUE(
      (xbase::Rect{0, 0, 200, 100}).Contains(clock_pos));

  // The rendered screen shows the mail window's title, not the editor's.
  std::string screen = server_->RenderScreen(0).ToString();
  EXPECT_NE(screen.find("mail"), std::string::npos);
  EXPECT_EQ(screen.find("editor"), std::string::npos);
  EXPECT_NE(screen.find("xclock"), std::string::npos);
}

TEST_F(SwmTest, Figure1DecorationRendering) {
  // Figure 1: the OpenLook+ decoration around a client.
  StartWm();
  auto app = Spawn("xclock", {"xclock", "XClock"}, {0, 0, 30, 8});
  std::string screen = server_->RenderScreen(0).ToString();
  // Title row: pulldown glyph, centered name, nail glyph.
  EXPECT_NE(screen.find("v"), std::string::npos);
  EXPECT_NE(screen.find("xclock"), std::string::npos);
  EXPECT_NE(screen.find("@"), std::string::npos);
  // The client area is filled with the client's background.
  ManagedClient* client = Managed(*app);
  xbase::Point client_pos = server_->RootPosition(app->window());
  xbase::Canvas canvas = server_->RenderScreen(0);
  EXPECT_EQ(canvas.At(client_pos.x + 3, client_pos.y + 3), 'x');
  (void)client;
}

TEST_F(SwmTest, Figure2RootPanelRendering) {
  // Figure 2: the 8-button, 2-row root panel, reparented.
  StartWm("swm*rootPanels: RootPanel\n");
  std::string screen = server_->RenderScreen(0).ToString();
  for (const char* label : {"quit", "restart", "iconify", "deiconify", "move",
                            "resize", "raise", "lower"}) {
    EXPECT_NE(screen.find(label), std::string::npos) << label;
  }
}

TEST_F(SwmTest, Figure3PannerRendering) {
  // Figure 3: the panner miniature with windows and the position outline.
  StartWm(
      "swm*virtualDesktop: 800x400\n"
      "swm*panner: True\n"
      "swm*pannerScale: 10\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 60, 30});
  wm_->MoveFrameTo(Managed(*app), {400, 200});
  wm_->ProcessEvents();
  swm::Panner* panner = wm_->panner(0);
  ASSERT_NE(panner, nullptr);
  xbase::Point origin = server_->RootPosition(panner->window());
  xbase::Canvas canvas = server_->RenderScreen(0);
  // The miniature box at panner cell (40,20).
  EXPECT_EQ(canvas.At(origin.x + 41, origin.y + 21), 'o');
  // The viewport outline at the top-left corner of the panner.
  EXPECT_EQ(canvas.At(origin.x, origin.y), '+');
}

TEST_F(SwmTest, PopupPlacementViaSwmRootProperty) {
  // §6.3.1's whole point: a toolkit placing a popup relative to SWM_ROOT
  // ends up at the right screen position even after panning.
  StartWm("swm*virtualDesktop: 800x400\nswm*panner: False\n");
  auto app = Spawn("editor", {"editor", "Editor"}, {0, 0, 40, 12});
  wm_->ExecuteCommandString("f.panTo(100, 50)", 0);
  wm_->ProcessEvents();
  app->ProcessEvents();

  // The client wants a popup at its own top-left corner.  The naive
  // root-relative answer and the SWM_ROOT-relative answer differ by the pan
  // offset; only the latter is correct.
  xproto::WindowId popup_parent = app->EffectiveRootForPopups();
  EXPECT_EQ(popup_parent, wm_->vdesk(0)->window());
  xbase::Point desktop_pos = app->believed_root_position();
  xproto::WindowId popup = app->display().CreateWindow(
      popup_parent, {desktop_pos.x, desktop_pos.y + 3, 20, 4}, 0,
      /*override_redirect=*/true);
  app->display().MapWindow(popup);
  wm_->ProcessEvents();
  // The popup really is where the client is on the glass.
  EXPECT_EQ(server_->RootPosition(popup).x, server_->RootPosition(app->window()).x);
}

TEST_F(SwmTest, SwmcmdChangesButtonAppearanceRemotely) {
  // §4.5: "This interface could also be used for things such as changing
  // the shape of a button to indicate the status of a process."  We use
  // the pending-selection path: swmcmd f.iconify, then pick the window.
  StartWm();
  auto app = Spawn("builder", {"builder", "Builder"});
  xlib::Display shell(server_.get(), "shell");
  swm::SendSwmCommand(&shell, 0, "f.iconify f.raise");
  wm_->ProcessEvents();
  EXPECT_TRUE(wm_->awaiting_target());
  xbase::Point pos = server_->RootPosition(app->window());
  Click({pos.x + 1, pos.y + 1});
  EXPECT_EQ(Managed(*app)->state, xproto::WmState::kIconic);
}

TEST_F(SwmTest, TemplatesAllLoadAndDecorate) {
  for (const std::string& name : swm::TemplateNames()) {
    StartWm("", name);
    {
      auto app = Spawn("probe", {"probe", "Probe"});
      ManagedClient* client = Managed(*app);
      ASSERT_NE(client, nullptr) << name;
      ASSERT_NE(client->frame, nullptr) << name;
      EXPECT_NE(client->name_object, nullptr) << name;
      EXPECT_TRUE(server_->IsViewable(app->window())) << name;
      // The app's connection must close before the server goes away.
    }
    wm_->ProcessEvents();
    wm_.reset();
    server_.reset();
  }
}

TEST_F(SwmTest, TemplateFilesWriteAndLoadBack) {
  std::string dir = ::testing::TempDir() + "/swm_templates";
  EXPECT_EQ(swm::WriteTemplateFiles(dir), 3);
  xrdb::ResourceDatabase db;
  EXPECT_GT(db.LoadFromFile(dir + "/openlook.ad"), 10);
  EXPECT_TRUE(db.Get("swm.a.panel.openLook", "Swm.A.Panel.OpenLook").has_value());
}

TEST_F(SwmTest, StressManyClientsLifecycle) {
  StartWm("swm*virtualDesktop: 1000x500\nswm*panner: True\n");
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  for (int i = 0; i < 40; ++i) {
    apps.push_back(Spawn("app" + std::to_string(i),
                         {"app" + std::to_string(i), i % 2 == 0 ? "Even" : "Odd"}));
  }
  EXPECT_EQ(wm_->ClientCount(), 41u);  // 40 apps + panner.

  wm_->ExecuteCommandString("f.iconify(Even)", 0);
  wm_->ProcessEvents();
  int iconic = 0;
  for (ManagedClient* client : wm_->Clients()) {
    if (client->state == xproto::WmState::kIconic) {
      ++iconic;
    }
  }
  EXPECT_EQ(iconic, 20);

  wm_->ExecuteCommandString("f.pan(300, 200) f.deiconify(Even)", 0);
  wm_->ProcessEvents();
  for (ManagedClient* client : wm_->Clients()) {
    EXPECT_EQ(client->state, xproto::WmState::kNormal);
  }

  // Destroy half the clients; the WM must stay consistent.
  for (int i = 0; i < 20; ++i) {
    apps[i]->display().DestroyWindow(apps[i]->window());
  }
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->ClientCount(), 21u);
  // And a full teardown reparents the remaining windows back.
  wm_.reset();
  for (int i = 20; i < 40; ++i) {
    EXPECT_EQ(server_->QueryTree(apps[i]->window())->parent, server_->RootWindow(0));
  }
}

TEST_F(SwmTest, WmCrashRecoveryViaSaveSet) {
  // If swm dies without cleanup, the server's save-set must rescue clients.
  StartWm();
  auto app = Spawn("survivor", {"survivor", "Survivor"});
  ASSERT_NE(Managed(*app), nullptr);
  // Simulate a crash: disconnect the WM connections without unmanaging.
  server_->Disconnect(wm_->display().client_id());
  EXPECT_EQ(server_->QueryTree(app->window())->parent, server_->RootWindow(0));
  EXPECT_TRUE(server_->IsViewable(app->window()));
  // Intentionally leak the WM object's state by resetting with the
  // connection already gone; the destructor must tolerate it.
  wm_.reset();
}

}  // namespace
}  // namespace swm_test
