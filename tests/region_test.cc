#include "src/base/region.h"

#include <gtest/gtest.h>

#include <random>

namespace xbase {
namespace {

TEST(RegionTest, EmptyRegion) {
  Region r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0);
  EXPECT_TRUE(r.Bounds().IsEmpty());
  EXPECT_FALSE(r.Contains({0, 0}));
}

TEST(RegionTest, SingleRect) {
  Region r(Rect{1, 2, 10, 5});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 50);
  EXPECT_EQ(r.Bounds(), (Rect{1, 2, 10, 5}));
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({11, 2}));
}

TEST(RegionTest, EmptyRectYieldsEmptyRegion) {
  EXPECT_TRUE(Region(Rect{5, 5, 0, 10}).IsEmpty());
}

TEST(RegionTest, UnionDisjoint) {
  Region a(Rect{0, 0, 10, 10});
  Region b(Rect{20, 20, 10, 10});
  Region u = a.Union(b);
  EXPECT_EQ(u.Area(), 200);
  EXPECT_EQ(u.Bounds(), (Rect{0, 0, 30, 30}));
}

TEST(RegionTest, UnionOverlapCountsOnce) {
  Region a(Rect{0, 0, 10, 10});
  Region b(Rect{5, 0, 10, 10});
  EXPECT_EQ(a.Union(b).Area(), 150);
}

TEST(RegionTest, UnionCoalescesAdjacentBands) {
  // Two vertically adjacent rects with identical x extents become one rect.
  Region a(Rect{0, 0, 10, 5});
  Region b(Rect{0, 5, 10, 5});
  Region u = a.Union(b);
  EXPECT_EQ(u.RectCount(), 1u);
  EXPECT_EQ(u.rects()[0], (Rect{0, 0, 10, 10}));
}

TEST(RegionTest, IntersectBasic) {
  Region a(Rect{0, 0, 10, 10});
  Region b(Rect{5, 5, 10, 10});
  Region i = a.Intersect(b);
  EXPECT_EQ(i.Area(), 25);
  EXPECT_EQ(i.Bounds(), (Rect{5, 5, 5, 5}));
}

TEST(RegionTest, SubtractHole) {
  Region a(Rect{0, 0, 10, 10});
  Region hole(Rect{3, 3, 4, 4});
  Region d = a.Subtract(hole);
  EXPECT_EQ(d.Area(), 100 - 16);
  EXPECT_FALSE(d.Contains({4, 4}));
  EXPECT_TRUE(d.Contains({0, 0}));
  EXPECT_TRUE(d.Contains({9, 9}));
  EXPECT_EQ(d.Bounds(), (Rect{0, 0, 10, 10}));
}

TEST(RegionTest, SubtractEverything) {
  Region a(Rect{2, 2, 5, 5});
  EXPECT_TRUE(a.Subtract(Region(Rect{0, 0, 100, 100})).IsEmpty());
}

TEST(RegionTest, TranslatePreservesShape) {
  Region a = Region(Rect{0, 0, 10, 10}).Subtract(Region(Rect{2, 2, 2, 2}));
  Region moved = a.Translated(100, 50);
  EXPECT_EQ(moved.Area(), a.Area());
  EXPECT_TRUE(moved.Contains({100, 100 - 50}));  // (0,50)+ (100,0)? sanity below
  EXPECT_TRUE(moved.Contains({100, 50}));
  EXPECT_FALSE(moved.Contains({102, 52}));
}

TEST(RegionTest, ContainsRect) {
  Region a = Region(Rect{0, 0, 10, 10}).Union(Region(Rect{10, 0, 10, 10}));
  EXPECT_TRUE(a.ContainsRect(Rect{5, 0, 10, 5}));  // Spans the seam.
  EXPECT_FALSE(a.ContainsRect(Rect{15, 5, 10, 2}));
  EXPECT_TRUE(a.ContainsRect(Rect{}));  // Empty rect trivially contained.
}

TEST(RegionTest, CanonicalFormMakesEqualityStructural) {
  Region a(std::vector<Rect>{{0, 0, 10, 10}, {10, 0, 10, 10}});
  Region b(Rect{0, 0, 20, 10});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.RectCount(), 1u);
}

TEST(RegionTest, OverlappingInputCanonicalized) {
  Region a(std::vector<Rect>{{0, 0, 10, 10}, {5, 5, 10, 10}});
  EXPECT_EQ(a.Area(), 175);
}

TEST(RegionTest, IntersectsPredicate) {
  Region a(Rect{0, 0, 10, 10});
  EXPECT_TRUE(a.Intersects(Region(Rect{9, 9, 5, 5})));
  EXPECT_FALSE(a.Intersects(Region(Rect{10, 10, 5, 5})));
}

// ---- Property-based sweeps: algebraic identities on random rect sets --------

Region RandomRegion(std::mt19937* rng, int max_rects) {
  std::uniform_int_distribution<int> count(0, max_rects);
  std::uniform_int_distribution<int> coord(0, 60);
  std::uniform_int_distribution<int> extent(1, 25);
  std::vector<Rect> rects;
  int n = count(*rng);
  for (int i = 0; i < n; ++i) {
    rects.push_back(Rect{coord(*rng), coord(*rng), extent(*rng), extent(*rng)});
  }
  return Region(std::move(rects));
}

class RegionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionPropertyTest, AlgebraicIdentities) {
  std::mt19937 rng(GetParam());
  for (int iteration = 0; iteration < 25; ++iteration) {
    Region a = RandomRegion(&rng, 6);
    Region b = RandomRegion(&rng, 6);

    // Inclusion–exclusion: |A∪B| = |A| + |B| - |A∩B|.
    EXPECT_EQ(a.Union(b).Area(), a.Area() + b.Area() - a.Intersect(b).Area());
    // A \ B and A∩B partition A.
    EXPECT_EQ(a.Subtract(b).Area() + a.Intersect(b).Area(), a.Area());
    // Commutativity.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    // Idempotence.
    EXPECT_EQ(a.Union(a), a);
    EXPECT_EQ(a.Intersect(a), a);
    EXPECT_TRUE(a.Subtract(a).IsEmpty());
    // (A \ B) ∩ B = ∅.
    EXPECT_TRUE(a.Subtract(b).Intersect(b).IsEmpty());
    // De Morgan-ish inside the bounding box: A \ (A \ B) == A ∩ B.
    EXPECT_EQ(a.Subtract(a.Subtract(b)), a.Intersect(b));
    // Translation invariance of area.
    EXPECT_EQ(a.Translated(13, -7).Area(), a.Area());
    // Round-trip translation is identity.
    EXPECT_EQ(a.Translated(9, 11).Translated(-9, -11), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace xbase
