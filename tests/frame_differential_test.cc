// Differential property test for the retained-mode frame pipeline
// (docs/RENDERING.md): seeded random operation sequences run against two
// otherwise-identical WM stacks — retained vs `Options::immediate_render` —
// and after every operation the rendered framebuffers must be
// byte-identical, while the retained stack must never paint more objects
// or pixels than the eager one (and strictly fewer over the whole run).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/swm/wm.h"
#include "src/xlib/client_app.h"
#include "src/xlib/icccm.h"
#include "src/xserver/server.h"

namespace swm_test {
namespace {

struct Stack {
  std::unique_ptr<xserver::Server> server;
  std::unique_ptr<swm::WindowManager> wm;
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
};

Stack StartStack(bool immediate_render) {
  Stack stack;
  stack.server = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 100, false}});
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.immediate_render = immediate_render;
  stack.wm = std::make_unique<swm::WindowManager>(stack.server.get(), options);
  EXPECT_TRUE(stack.wm->Start());
  return stack;
}

// One random operation, applied identically to both stacks.  `op`, `target`
// and the geometry/name payloads are drawn once so the streams match.
void ApplyOp(Stack* stack, int op, int target, const xbase::Rect& geometry,
             const std::string& name, int* spawned) {
  std::vector<std::unique_ptr<xlib::ClientApp>>& apps = stack->apps;
  if (apps.empty() || (op == 0 && apps.size() < 5)) {
    xlib::ClientAppConfig config;
    config.name = "diff" + std::to_string((*spawned)++);
    config.wm_class = {config.name, "Diff"};
    config.command = {config.name};
    config.geometry = geometry;
    apps.push_back(std::make_unique<xlib::ClientApp>(stack->server.get(), config));
    apps.back()->Map();
  } else {
    xlib::ClientApp& app = *apps[target % apps.size()];
    switch (op) {
      case 1:
        app.RequestMoveResize(geometry);
        break;
      case 2:
        app.RequestIconify();
        break;
      case 3:
        app.Map();  // Deiconify (or no-op when already mapped).
        break;
      case 4:
        xlib::SetWmName(&app.display(), app.window(), name);
        break;
      default:
        xlib::SetWmIconName(&app.display(), app.window(), name);
        break;
    }
  }
  stack->wm->ProcessEvents();
  for (std::unique_ptr<xlib::ClientApp>& app : apps) {
    app->ProcessEvents();
  }
  stack->wm->ProcessEvents();
}

TEST(FrameDifferentialTest, RetainedMatchesImmediatePixelForPixel) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kError);
  constexpr int kSequences = 100;
  constexpr int kOpsPerSequence = 12;
  int64_t total_retained_pixels = 0;
  int64_t total_immediate_pixels = 0;
  uint64_t total_retained_painted = 0;
  uint64_t total_immediate_painted = 0;

  for (int sequence = 0; sequence < kSequences; ++sequence) {
    std::mt19937_64 rng(0xf00dULL + sequence);
    Stack retained = StartStack(/*immediate_render=*/false);
    Stack immediate = StartStack(/*immediate_render=*/true);
    int spawned_retained = 0;
    int spawned_immediate = 0;

    for (int step = 0; step < kOpsPerSequence; ++step) {
      SCOPED_TRACE("sequence " + std::to_string(sequence) + " step " +
                   std::to_string(step));
      int op = static_cast<int>(rng() % 6);
      int target = static_cast<int>(rng() % 8);
      xbase::Rect geometry{static_cast<int>(rng() % 140),
                           static_cast<int>(rng() % 60),
                           static_cast<int>(10 + rng() % 50),
                           static_cast<int>(6 + rng() % 24)};
      std::string name = "name" + std::to_string(rng() % 12);

      ApplyOp(&retained, op, target, geometry, name, &spawned_retained);
      ApplyOp(&immediate, op, target, geometry, name, &spawned_immediate);

      ASSERT_EQ(retained.server->RenderScreen(0).ToString(),
                immediate.server->RenderScreen(0).ToString());
    }

    const xserver::Server::RenderStats& retained_render =
        retained.server->render_stats();
    const xserver::Server::RenderStats& immediate_render =
        immediate.server->render_stats();
    EXPECT_LE(retained_render.pixels_drawn, immediate_render.pixels_drawn);
    uint64_t retained_painted =
        retained.wm->toolkit(0).frame_stats().objects_painted;
    uint64_t immediate_painted =
        immediate.wm->toolkit(0).frame_stats().objects_painted;
    EXPECT_LE(retained_painted, immediate_painted);
    total_retained_pixels += retained_render.pixels_drawn;
    total_immediate_pixels += immediate_render.pixels_drawn;
    total_retained_painted += retained_painted;
    total_immediate_painted += immediate_painted;
  }

  // Over the whole run the reduction must be real, not just non-negative.
  EXPECT_LT(total_retained_pixels, total_immediate_pixels);
  EXPECT_LT(total_retained_painted, total_immediate_painted);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

}  // namespace
}  // namespace swm_test
