// Seeded chaos (docs/ROBUSTNESS.md): drive the WM through a randomized
// client workload while an installed FaultPlan destroys windows in the
// manage/configure races, fails requests out of the blue, corrupts property
// reads and duplicates/reorders event delivery.  After every step the WM's
// structural invariants must hold.  Both the workload and the faults derive
// from the seed, so a failing seed reproduces exactly.
#include <memory>
#include <string>
#include <vector>

#include "src/swm/swmcmd.h"
#include "src/xserver/faults.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

// The invariants a healthy WM maintains no matter what clients do:
// every managed client's window exists, its frame exists, and the window is
// actually reparented into its frame's client panel.
void CheckInvariants(xserver::Server* server, swm::WindowManager* wm) {
  for (ManagedClient* client : wm->Clients()) {
    ASSERT_TRUE(server->WindowExists(client->window))
        << "dangling ManagedClient for window " << client->window;
    ASSERT_NE(client->frame, nullptr) << "client " << client->window;
    ASSERT_TRUE(server->WindowExists(client->frame->window()))
        << "frame of client " << client->window;
    ASSERT_NE(client->client_panel, nullptr) << "client " << client->window;
    auto tree = server->QueryTree(client->window);
    ASSERT_TRUE(tree.has_value());
    EXPECT_EQ(tree->parent, client->client_panel->window())
        << "client " << client->window << " not parented in its frame";
  }
}

class ChaosControlTest : public SwmTest {
 protected:
  void SetUp() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal); }
  void TearDown() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning); }
};

class ChaosTest : public ChaosControlTest,
                  public ::testing::WithParamInterface<uint64_t> {
 protected:
  // The seeded fault workload, shared by the retained-pipeline run and the
  // immediate-render ablation run (docs/RENDERING.md).
  void RunSeededFaults(uint64_t seed, bool immediate_render);
};

void ChaosTest::RunSeededFaults(uint64_t seed, bool immediate_render) {
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.immediate_render = immediate_render;
  StartWm(options);

  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.destroy_on_map_permille = 250;
  plan.destroy_on_reparent_permille = 120;
  plan.destroy_on_configure_permille = 80;
  plan.corrupt_property_permille = 30;
  plan.duplicate_event_permille = 60;
  plan.delay_event_permille = 60;
  server_->InstallFaultPlan(plan);

  // The workload draws from its own stream so faults and actions stay
  // independently reproducible.
  xserver::FaultRng driver(seed * 0x9e3779b9u + 1);
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  int spawned = 0;

  for (int step = 0; step < 60; ++step) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " step " + std::to_string(step));
    int action = apps.empty() ? 0 : driver.Range(0, 6);
    switch (action) {
      case 0: {  // Spawn and map a fresh client.
        xlib::ClientAppConfig config;
        config.name = "chaos" + std::to_string(spawned++);
        config.wm_class = {config.name, "Chaos"};
        config.command = {config.name};
        config.geometry = {driver.Range(0, 120), driver.Range(0, 60),
                           driver.Range(10, 50), driver.Range(8, 30)};
        apps.push_back(std::make_unique<xlib::ClientApp>(server_.get(), config));
        apps.back()->Map();
        break;
      }
      case 1: {  // A client destroys its window.
        auto& app = apps[driver.Range(0, static_cast<int>(apps.size()) - 1)];
        app->display().DestroyWindow(app->window());
        break;
      }
      case 2: {  // ICCCM withdrawal.
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->Unmap();
        break;
      }
      case 3: {  // Configure through the redirect.
        auto& app = apps[driver.Range(0, static_cast<int>(apps.size()) - 1)];
        app->RequestMoveResize({driver.Range(-10, 150), driver.Range(-10, 80),
                                driver.Range(1, 60), driver.Range(1, 40)});
        break;
      }
      case 4: {  // WM_CHANGE_STATE iconify request.
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->RequestIconify();
        break;
      }
      case 5: {  // (Re)map — deiconifies or remaps a withdrawn window.
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->Map();
        break;
      }
      case 6: {  // swmcmd traffic, valid and garbage.
        xlib::Display shell(server_.get(), "chaos-shell");
        swm::SendSwmCommand(&shell, 0,
                            driver.Roll(500) ? "f.exec(chaos)" : "f.raise(((");
        break;
      }
    }
    wm_->ProcessEvents();
    CheckInvariants(server_.get(), wm_.get());
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  // Faults off: the WM must still be fully functional.
  server_->ClearFaultPlan();
  wm_->ProcessEvents();
  CheckInvariants(server_.get(), wm_.get());
  EXPECT_GT(server_->fault_counters().Total(), 0u)
      << "seed " << seed << " injected nothing — chaos was a no-op";

  auto survivor = Spawn("survivor", {"survivor", "Survivor"});
  ManagedClient* client = Managed(*survivor);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(server_->IsViewable(survivor->window()));
}

TEST_P(ChaosTest, SurvivesSeededFaults) {
  RunSeededFaults(GetParam(), /*immediate_render=*/false);
}

// The immediate-render ablation must be equally crash-proof: it is the
// pipeline the original chaos suite hardened, kept for A/B comparison.
TEST_P(ChaosTest, SurvivesSeededFaultsImmediateRender) {
  RunSeededFaults(GetParam(), /*immediate_render=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<uint64_t>(1, 25));  // 24 distinct seeds.

// The control experiment: the exact fault the self-healing layer exists for,
// with the layer switched off.  The client dies in the reparent→SelectInput
// gap, no DestroyNotify ever reaches the WM, and a dangling ManagedClient
// stays behind — proving the barrier in the tests above is load-bearing.
TEST_F(ChaosControlTest, WithoutSelfHealingDestroyDuringManageLeavesDanglingClient) {
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  options.self_heal = false;
  StartWm(options);

  xserver::FaultPlan plan;
  plan.destroy_on_reparent_permille = 1000;
  server_->InstallFaultPlan(plan);

  xlib::ClientAppConfig config;
  config.name = "doomed";
  config.wm_class = {"doomed", "Doomed"};
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();

  EXPECT_FALSE(server_->WindowExists(app.window()));
  // The bug, demonstrated: the window is gone but the WM still tracks it.
  EXPECT_EQ(wm_->ClientCount(), 1u);
  EXPECT_NE(wm_->FindClient(app.window()), nullptr);
}

// Same fault, healing on: the manage path rolls back and nothing dangles.
TEST_F(ChaosControlTest, WithSelfHealingSameFaultRollsBack) {
  StartWm();
  xserver::FaultPlan plan;
  plan.destroy_on_reparent_permille = 1000;
  server_->InstallFaultPlan(plan);

  xlib::ClientAppConfig config;
  config.name = "doomed";
  config.wm_class = {"doomed", "Doomed"};
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();

  EXPECT_FALSE(server_->WindowExists(app.window()));
  EXPECT_EQ(wm_->ClientCount(), 0u);
  EXPECT_EQ(wm_->FindClient(app.window()), nullptr);
}

}  // namespace
}  // namespace swm_test
