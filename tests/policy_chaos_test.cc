// Policy-switch chaos (docs/POLICIES.md): the seeded fault workload from
// chaos_test.cc, with one twist — mid-run the active layout policy cycles
// through all four registered policies via the swmcmd channel, so manage,
// unmanage, configure, iconify and reflow races all happen across policy
// boundaries.  After every step the WM's structural invariants must hold,
// plus a policy-specific one: under slot-granting policies every eligible
// frame stays inside the viewport.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/swm/policy/layout_policy.h"
#include "src/swm/swmcmd.h"
#include "src/swm/wm.h"
#include "src/xserver/faults.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

// Structural invariants (as in chaos_test.cc): no dangling clients, frames
// exist, clients are parented in their frames.
void CheckStructure(xserver::Server* server, swm::WindowManager* wm) {
  for (ManagedClient* client : wm->Clients()) {
    ASSERT_TRUE(server->WindowExists(client->window))
        << "dangling ManagedClient for window " << client->window;
    ASSERT_NE(client->frame, nullptr) << "client " << client->window;
    ASSERT_TRUE(server->WindowExists(client->frame->window()))
        << "frame of client " << client->window;
    ASSERT_NE(client->client_panel, nullptr) << "client " << client->window;
    auto tree = server->QueryTree(client->window);
    ASSERT_TRUE(tree.has_value());
    EXPECT_EQ(tree->parent, client->client_panel->window())
        << "client " << client->window << " not parented in its frame";
  }
}

// Slot policies must never push a frame outside the 200x100 viewport.
// (Floating windows may hang off-screen by design; transients and sticky
// windows float under every policy, so only slot-eligible clients count.)
void CheckSlotContainment(swm::WindowManager* wm) {
  std::string policy = wm->layout_policy().name();
  if (policy == "floating") {
    return;
  }
  for (ManagedClient* client : wm->Clients()) {
    if (client->is_internal || client->sticky ||
        client->transient_for != xproto::kNone ||
        client->state != xproto::WmState::kNormal || client->frame == nullptr) {
      continue;
    }
    xbase::Rect frame = client->frame->geometry();
    EXPECT_GE(frame.x, 0) << policy << " pushed client " << client->window;
    EXPECT_GE(frame.y, 0) << policy << " pushed client " << client->window;
    // The frame's origin stays inside the viewport, and its size never
    // exceeds the viewport — except that ICCCM trumps the slot: a (possibly
    // fault-corrupted) WM_NORMAL_HINTS minimum larger than the viewport
    // cannot be shrunk, so the hinted floor caps the size instead.
    EXPECT_LT(frame.x, 200) << policy << " pushed client " << client->window;
    EXPECT_LT(frame.y, 100) << policy << " pushed client " << client->window;
    xbase::Size hinted_min = client->size_hints.Constrain({1, 1});
    int decoration_w = frame.width - client->client_panel->geometry().width;
    int decoration_h = frame.height - client->client_panel->geometry().height;
    EXPECT_LE(frame.width, std::max(200, hinted_min.width + decoration_w))
        << policy << " overgrew client " << client->window;
    EXPECT_LE(frame.height, std::max(100, hinted_min.height + decoration_h))
        << policy << " overgrew client " << client->window;
  }
}

class PolicyChaosTest : public SwmTest,
                        public ::testing::WithParamInterface<uint64_t> {
 protected:
  void SetUp() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal); }
  void TearDown() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning); }
};

TEST_P(PolicyChaosTest, SurvivesSeededFaultsAcrossPolicySwitches) {
  uint64_t seed = GetParam();
  StartWm();

  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.destroy_on_map_permille = 250;
  plan.destroy_on_reparent_permille = 120;
  plan.destroy_on_configure_permille = 80;
  plan.corrupt_property_permille = 30;
  plan.duplicate_event_permille = 60;
  plan.delay_event_permille = 60;
  server_->InstallFaultPlan(plan);

  const std::vector<std::string>& policies = swm::LayoutPolicyNames();
  xserver::FaultRng driver(seed * 0x9e3779b9u + 17);
  std::vector<std::unique_ptr<xlib::ClientApp>> apps;
  int spawned = 0;
  size_t next_policy = seed % policies.size();

  for (int step = 0; step < 60; ++step) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " step " + std::to_string(step) +
                 " policy " + wm_->layout_policy().name());
    // Every 10th step the policy switches mid-chaos — the relayout runs
    // against whatever half-dead population the faults left behind.
    if (step % 10 == 5) {
      xlib::Display shell(server_.get(), "policy-chaos-shell");
      swm::SendSwmCommand(&shell, 0, "policy " + policies[next_policy]);
      next_policy = (next_policy + 1) % policies.size();
    }
    int action = apps.empty() ? 0 : driver.Range(0, 6);
    switch (action) {
      case 0: {  // Spawn and map a fresh client.
        xlib::ClientAppConfig config;
        config.name = "pchaos" + std::to_string(spawned++);
        config.wm_class = {config.name, "PolicyChaos"};
        config.command = {config.name};
        config.geometry = {driver.Range(0, 120), driver.Range(0, 60),
                           driver.Range(10, 50), driver.Range(8, 30)};
        apps.push_back(std::make_unique<xlib::ClientApp>(server_.get(), config));
        apps.back()->Map();
        break;
      }
      case 1: {  // A client destroys its window.
        auto& app = apps[driver.Range(0, static_cast<int>(apps.size()) - 1)];
        app->display().DestroyWindow(app->window());
        break;
      }
      case 2: {  // ICCCM withdrawal.
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->Unmap();
        break;
      }
      case 3: {  // Configure through the redirect (slot policies deny it).
        auto& app = apps[driver.Range(0, static_cast<int>(apps.size()) - 1)];
        app->RequestMoveResize({driver.Range(-10, 150), driver.Range(-10, 80),
                                driver.Range(1, 60), driver.Range(1, 40)});
        break;
      }
      case 4: {  // WM_CHANGE_STATE iconify request.
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->RequestIconify();
        break;
      }
      case 5: {  // (Re)map — deiconifies or remaps a withdrawn window.
        apps[driver.Range(0, static_cast<int>(apps.size()) - 1)]->Map();
        break;
      }
      case 6: {  // Policy verbs, valid and garbage.
        xlib::Display shell(server_.get(), "policy-chaos-shell");
        const char* command = driver.Roll(333)   ? "last"
                              : driver.Roll(500) ? "close"
                                                 : "policy no-such-policy";
        swm::SendSwmCommand(&shell, 0, command);
        break;
      }
    }
    wm_->ProcessEvents();
    CheckStructure(server_.get(), wm_.get());
    CheckSlotContainment(wm_.get());
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  // Faults off: whatever policy is active, the WM must still manage new
  // clients and hold its invariants.
  server_->ClearFaultPlan();
  wm_->ProcessEvents();
  CheckStructure(server_.get(), wm_.get());
  EXPECT_GT(server_->fault_counters().Total(), 0u)
      << "seed " << seed << " injected nothing — chaos was a no-op";

  auto survivor = Spawn("survivor", {"survivor", "Survivor"});
  ManagedClient* client = Managed(*survivor);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(server_->IsViewable(survivor->window()));
  CheckSlotContainment(wm_.get());

  // And a final full cycle through every policy with the fault plan gone:
  // each switch relayouts the surviving population without violating
  // containment or structure.
  for (const std::string& name : policies) {
    ASSERT_TRUE(wm_->SetLayoutPolicy(name));
    wm_->ProcessEvents();
    CheckStructure(server_.get(), wm_.get());
    CheckSlotContainment(wm_.get());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyChaosTest,
                         ::testing::Range<uint64_t>(1, 25));  // 24 distinct seeds.

}  // namespace
}  // namespace swm_test
