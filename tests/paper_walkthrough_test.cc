// Executable walkthrough of the paper, section by section: one continuous
// session exercising every §'s headline behaviour in order.  Serves as
// living documentation tying the reproduction back to the text.
#include "src/swm/swmcmd.h"
#include "src/swm/templates.h"
#include "src/xlib/icccm.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

TEST_F(SwmTest, PaperWalkthrough) {
  // ---- §3 Configuration: everything through the resource database, with
  // a template included and then overridden.
  StartWm(
      "swm*template: openlook\n"
      "Swm*button.nail.label: S\n"              // User override of a template entry.
      "swm*virtualDesktop: 800x400\n"           // §6.
      "swm*panner: True\n"
      "swm*pannerScale: 10\n"
      "swm*XClock*sticky: True\n"               // §6.2 class-based stickiness.
      "swm*iconHolders: termBox\n"              // §4.1.5.
      "swm*iconHolder.termBox.geometry: 60x40+130+4\n"
      "swm*iconHolder.termBox.class: XTerm\n");

  // ---- §4.1.1 Decoration panels: an xclock gets the openLook decoration
  // with the pulldown / name / nail objects, and the user's override shows.
  auto xclock = Spawn("xclock", {"xclock", "XClock"}, {0, 0, 20, 6});
  ManagedClient* clock = Managed(*xclock);
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock->decoration_name, "openLook");
  EXPECT_NE(clock->frame->FindDescendant("pulldown"), nullptr);
  auto* nail = static_cast<oi::Button*>(clock->frame->FindDescendant("nail"));
  ASSERT_NE(nail, nullptr);
  EXPECT_EQ(nail->label(), "S");
  // The class-sticky resource applied: the clock is on the glass.
  EXPECT_TRUE(clock->sticky);

  // ---- §4.2 Buttons change appearance and behaviour dynamically.
  auto* name_button = static_cast<oi::Button*>(clock->name_object);
  name_button->SetLabel("it is noon");
  EXPECT_EQ(name_button->label(), "it is noon");
  name_button->SetBindings(xtb::ParseBindings("<Btn1> : f.lower").bindings);
  EXPECT_EQ(name_button->bindings()[0].functions[0].name, "f.lower");

  // ---- §4.4 Bindings + functions: a binding fires a function list.
  auto xterm = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  ManagedClient* term = Managed(*xterm);
  EXPECT_FALSE(term->sticky);
  xbase::Rect before_zoom = term->FrameGeometry();
  xbase::Point title = ObjectRootPos(term->name_object);
  Click({title.x + 1, title.y + 1}, 2);  // Template: <Btn2> : f.save f.zoom.
  EXPECT_NE(term->FrameGeometry(), before_zoom);
  wm_->ExecuteCommandString("f.restore(XTerm)", 0);
  wm_->ProcessEvents();
  EXPECT_EQ(term->FrameGeometry(), before_zoom);

  // ---- §4.4.1 All five invocation modes, via §4.5's swmcmd channel.
  xlib::Display shell(server_.get(), "shellhost");
  swm::SendSwmCommand(&shell, 0, "f.iconify(XTerm)");  // Class mode.
  wm_->ProcessEvents();
  EXPECT_EQ(term->state, xproto::WmState::kIconic);
  // The xterm's icon landed in the class-filtered holder (§4.1.5).
  EXPECT_NE(term->icon_holder, nullptr);
  EXPECT_EQ(term->icon_holder->name(), "termBox");

  swm::SendSwmCommand(&shell, 0, "f.deiconify(XTerm)");
  wm_->ProcessEvents();
  EXPECT_EQ(term->state, xproto::WmState::kNormal);

  char by_id[48];
  std::snprintf(by_id, sizeof(by_id), "f.lower(#0x%x)", xterm->window());
  swm::SendSwmCommand(&shell, 0, by_id);  // Window-id mode.
  wm_->ProcessEvents();

  xbase::Point over = server_->RootPosition(xterm->window());
  server_->SimulateMotion({over.x + 1, over.y + 1});
  swm::SendSwmCommand(&shell, 0, "f.raise(#$)");  // Under-pointer mode.
  wm_->ProcessEvents();

  swm::SendSwmCommand(&shell, 0, "f.raise");  // Prompt mode.
  wm_->ProcessEvents();
  EXPECT_TRUE(wm_->awaiting_target());
  Click({over.x + 1, over.y + 1});
  EXPECT_FALSE(wm_->awaiting_target());

  // ---- §5 SHAPE: a shaped oclock arrives and gets the shaped decoration.
  xlib::ClientAppConfig oconfig;
  oconfig.name = "oclock";
  oconfig.wm_class = {"oclock", "Clock"};
  oconfig.command = {"oclock"};
  oconfig.geometry = {0, 0, 14, 14};
  oconfig.shaped = true;
  xlib::ClientApp oclock(server_.get(), oconfig);
  oclock.Map();
  wm_->ProcessEvents();
  ManagedClient* shaped = wm_->FindClient(oclock.window());
  EXPECT_EQ(shaped->decoration_name, "shapeit");
  EXPECT_TRUE(server_->IsShaped(shaped->frame->window()));

  // ---- §6 The Virtual Desktop: pan; the sticky clock stays, others move.
  xbase::Point clock_screen = server_->RootPosition(xclock->window());
  xbase::Point term_desktop = term->ClientDesktopPosition();
  wm_->ExecuteCommandString("f.panTo(200, 100)", 0);
  wm_->ProcessEvents();
  EXPECT_EQ(server_->RootPosition(xclock->window()), clock_screen);
  EXPECT_EQ(term->ClientDesktopPosition(), term_desktop);

  // ---- §6.1 The panner: reparented, sticky, drives panning.
  swm::Panner* panner = wm_->panner(0);
  ASSERT_NE(panner, nullptr);
  ManagedClient* panner_client = wm_->FindClient(panner->window());
  ASSERT_NE(panner_client, nullptr);
  EXPECT_TRUE(panner_client->sticky);
  xbase::Point porigin = server_->RootPosition(panner->window());
  Click({porigin.x + 10, porigin.y + 10});
  // Clicked panner cell (10,10) = desktop (100,100), centered in the
  // 200x100 viewport: offset clamps to (0, 50).
  EXPECT_EQ(wm_->vdesk(0)->offset(), (xbase::Point{0, 50}));

  // ---- §6.3.1 The SWM_ROOT property solves popup placement.
  EXPECT_EQ(xterm->EffectiveRootForPopups(), wm_->vdesk(0)->window());
  xterm->ProcessEvents();
  EXPECT_EQ(xterm->believed_root_position(), term->ClientDesktopPosition());

  // ---- §6.3.2 USPosition absolute, PPosition viewport-relative.
  wm_->vdesk(0)->PanTo({100, 100});
  auto us_app = Spawn("usw", {"usw", "UsW"}, {300, 200, 10, 5},
                      xproto::kUSPosition | xproto::kUSSize);
  auto pp_app = Spawn("ppw", {"ppw", "PpW"}, {30, 20, 10, 5},
                      xproto::kPPosition | xproto::kPSize);
  EXPECT_EQ(Managed(*us_app)->ClientDesktopPosition(), (xbase::Point{300, 200}));
  EXPECT_EQ(Managed(*pp_app)->ClientDesktopPosition(), (xbase::Point{130, 120}));

  // ---- §7 Session management: f.places captures the whole session.
  wm_->ExecuteCommandString("f.places", 0);
  const std::string& places = wm_->last_places();
  for (const char* needle :
       {"xclock", "xterm", "oclock", "-sticky", "exec swm", "swmhints -geometry"}) {
    EXPECT_NE(places.find(needle), std::string::npos) << needle;
  }
  // The panner (internal) is not in the session file.
  EXPECT_EQ(places.find("SwmPanner"), std::string::npos);

  // ---- §8/§9: swm adapts; policy comes from data.  Switch look-and-feel
  // on a *new* WM instance over the same server state.
  us_app.reset();
  pp_app.reset();
  wm_.reset();  // Everything reparents back to the roots.
  EXPECT_EQ(server_->QueryTree(xterm->window())->parent, server_->RootWindow(0));

  swm::WindowManager::Options motif_options;
  motif_options.template_name = "motif";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), motif_options);
  ASSERT_TRUE(wm_->Start());  // Manages the surviving windows.
  ManagedClient* term_again = wm_->FindClient(xterm->window());
  ASSERT_NE(term_again, nullptr);
  EXPECT_EQ(term_again->decoration_name, "motif");
  EXPECT_NE(term_again->frame->FindDescendant("minimize"), nullptr);
}

}  // namespace
}  // namespace swm_test
