// Readiness core tests (docs/PROTOCOL.md "Out-of-process operation"): the
// epoll wrapper's add/modify/remove discipline, the event loop's fd dispatch,
// and the timerfd-backed one-shot deadline heap — ordering, cancellation,
// re-arming from inside callbacks, and RunUntil budgets.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "src/base/poller.h"

namespace xbase {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() {
    EXPECT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
  }
  ~Pipe() {
    CloseRead();
    CloseWrite();
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void CloseRead() {
    if (fds[0] >= 0) {
      ::close(fds[0]);
      fds[0] = -1;
    }
  }
  void CloseWrite() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
  void WriteByte() {
    uint8_t b = 0x5a;
    EXPECT_EQ(::write(fds[1], &b, 1), 1);
  }
  void DrainRead() {
    uint8_t buf[64];
    while (::read(fds[0], buf, sizeof buf) > 0) {
    }
  }
};

// ---- Poller ----------------------------------------------------------------

TEST(Poller, ReportsReadabilityByKey) {
  Poller poller;
  ASSERT_TRUE(poller.ok());
  Pipe pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), /*key=*/42, /*want_read=*/true,
                         /*want_write=*/false));

  std::vector<Poller::Event> events;
  EXPECT_EQ(poller.Wait(0, &events), 0) << "nothing written yet";

  pipe.WriteByte();
  ASSERT_EQ(poller.Wait(/*timeout_ms=*/1000, &events), 1);
  EXPECT_EQ(events[0].key, 42u);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  events.clear();
  pipe.DrainRead();
  EXPECT_EQ(poller.Wait(0, &events), 0) << "drained; level-triggered edge gone";

  EXPECT_TRUE(poller.Remove(pipe.read_fd()));
  pipe.WriteByte();
  EXPECT_EQ(poller.Wait(0, &events), 0) << "removed fds stay silent";
}

TEST(Poller, PeerCloseSurfacesAsReadableOrClosed) {
  Poller poller;
  Pipe pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), 7, true, false));
  pipe.CloseWrite();
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(1000, &events), 1);
  // A dead writer must wake the reader so it can observe EOF.
  EXPECT_TRUE(events[0].readable || events[0].closed);
}

TEST(Poller, ModifyChangesInterestSet) {
  Poller poller;
  Pipe pipe;
  // Write side of an empty pipe is immediately writable.
  ASSERT_TRUE(poller.Add(pipe.write_fd(), 9, /*want_read=*/false,
                         /*want_write=*/true));
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(1000, &events), 1);
  EXPECT_TRUE(events[0].writable);

  // Drop write interest: silence.
  ASSERT_TRUE(poller.Modify(pipe.write_fd(), 9, /*want_read=*/false,
                            /*want_write=*/false));
  events.clear();
  EXPECT_EQ(poller.Wait(0, &events), 0);
}

TEST(Poller, AddUnpollableFdFailsWithoutCrashing) {
  Poller poller;
  EXPECT_FALSE(poller.Add(-1, 1, true, false));
  EXPECT_FALSE(poller.Remove(-1));
}

// ---- EventLoop: fd watches -------------------------------------------------

TEST(EventLoop, DispatchesFdCallbacks) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  Pipe pipe;
  int fired = 0;
  ASSERT_TRUE(loop.WatchFd(pipe.read_fd(), [&](const Poller::Event& event) {
    EXPECT_TRUE(event.readable);
    ++fired;
    pipe.DrainRead();
  }));
  EXPECT_EQ(loop.watch_count(), 1u);

  EXPECT_EQ(loop.PollOnce(0), 0);
  pipe.WriteByte();
  EXPECT_EQ(loop.PollOnce(1000), 1);
  EXPECT_EQ(fired, 1);

  loop.UnwatchFd(pipe.read_fd());
  EXPECT_EQ(loop.watch_count(), 0u);
  pipe.WriteByte();
  EXPECT_EQ(loop.PollOnce(0), 0);
}

TEST(EventLoop, CallbackMayUnwatchItsOwnFd) {
  EventLoop loop;
  Pipe pipe;
  int fired = 0;
  ASSERT_TRUE(loop.WatchFd(pipe.read_fd(), [&](const Poller::Event&) {
    ++fired;
    loop.UnwatchFd(pipe.read_fd());
  }));
  pipe.WriteByte();
  EXPECT_EQ(loop.PollOnce(1000), 1);
  // The byte is still buffered, but the watch is gone.
  EXPECT_EQ(loop.PollOnce(0), 0);
  EXPECT_EQ(fired, 1);
}

// ---- EventLoop: timers -----------------------------------------------------

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.AddTimer(30, [&]() { order.push_back(3); });
  loop.AddTimer(10, [&]() { order.push_back(1); });
  loop.AddTimer(20, [&]() { order.push_back(2); });
  ASSERT_EQ(loop.pending_timers(), 3u);

  int64_t deadline = EventLoop::NowMs() + 2000;
  while (loop.pending_timers() > 0 && EventLoop::NowMs() < deadline) {
    loop.PollOnce(50);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.stats().timers_fired, 3u);
}

TEST(EventLoop, ZeroDelayFiresOnNextPoll) {
  EventLoop loop;
  bool fired = false;
  loop.AddTimer(0, [&]() { fired = true; });
  loop.PollOnce(1000);
  EXPECT_TRUE(fired);
}

TEST(EventLoop, CanceledTimersNeverFire) {
  EventLoop loop;
  bool fired = false;
  EventLoop::TimerId id = loop.AddTimer(0, [&]() { fired = true; });
  loop.CancelTimer(id);
  EXPECT_EQ(loop.pending_timers(), 0u);
  loop.PollOnce(10);
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.stats().timers_canceled, 1u);
  // Double-cancel and bogus ids are harmless.
  loop.CancelTimer(id);
  loop.CancelTimer(99999);
}

TEST(EventLoop, TimerCallbackMayRearm) {
  EventLoop loop;
  int fired = 0;
  std::function<void()> tick = [&]() {
    if (++fired < 3) {
      loop.AddTimer(1, tick);
    }
  };
  loop.AddTimer(1, tick);
  int64_t deadline = EventLoop::NowMs() + 2000;
  while (fired < 3 && EventLoop::NowMs() < deadline) {
    loop.PollOnce(50);
  }
  EXPECT_EQ(fired, 3);
}

TEST(EventLoop, RunUntilReturnsVerdict) {
  EventLoop loop;
  bool done = false;
  loop.AddTimer(10, [&]() { done = true; });
  EXPECT_TRUE(loop.RunUntil([&]() { return done; }, /*budget_ms=*/2000));
  // An impossible predicate exhausts the budget and says so.
  EXPECT_FALSE(loop.RunUntil([]() { return false; }, /*budget_ms=*/30));
}

TEST(EventLoop, NowMsIsMonotonic) {
  int64_t a = EventLoop::NowMs();
  int64_t b = EventLoop::NowMs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace xbase
