// ICCCM input hardening (docs/ROBUSTNESS.md "Input hardening and
// quarantine"): the sanitizing decoders must turn every hostile property
// shape — insane sizes, inverted min/max, zero increments, giant strings,
// truncated structs, transient_for self-references and cycles — into safe
// values, counting each repair in SanitizerStats.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/xlib/icccm.h"
#include "src/xproto/sanitize.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using xproto::SanitizerStats;
using xproto::SizeHints;
using xproto::WmHints;

// ---- Pure sanitizer unit tests ---------------------------------------------

TEST(SanitizeSizeHintsTest, ClampsInsaneSizes) {
  SizeHints hints;
  hints.min_width = -5;
  hints.max_width = 1 << 20;
  hints.width = -3;
  hints.x = 1 << 24;
  SanitizerStats stats;
  EXPECT_TRUE(SanitizeSizeHints(&hints, &stats));
  EXPECT_EQ(hints.min_width, 1);
  EXPECT_EQ(hints.max_width, xproto::kMaxCoordinate);
  EXPECT_EQ(hints.width, 0);
  EXPECT_EQ(hints.x, xproto::kMaxCoordinate);
  EXPECT_EQ(stats.size_clamped, 1u);
  EXPECT_GT(stats.Total(), 0u);
}

TEST(SanitizeSizeHintsTest, SwapsInvertedMinMax) {
  SizeHints hints;
  hints.min_width = 500;
  hints.max_width = 100;
  hints.min_height = 40;
  hints.max_height = 60;  // Sane on this axis: stays put.
  SanitizerStats stats;
  EXPECT_TRUE(SanitizeSizeHints(&hints, &stats));
  EXPECT_EQ(hints.min_width, 100);
  EXPECT_EQ(hints.max_width, 500);
  EXPECT_EQ(hints.min_height, 40);
  EXPECT_EQ(hints.max_height, 60);
  EXPECT_EQ(stats.min_max_swapped, 1u);
}

TEST(SanitizeSizeHintsTest, RejectsZeroAndNegativeIncrements) {
  SizeHints hints;
  hints.width_inc = 0;
  hints.height_inc = -7;
  SanitizerStats stats;
  EXPECT_TRUE(SanitizeSizeHints(&hints, &stats));
  EXPECT_EQ(hints.width_inc, 1);
  EXPECT_EQ(hints.height_inc, 1);
  EXPECT_EQ(stats.increments_rejected, 1u);
}

TEST(SanitizeSizeHintsTest, SaneHintsUntouched) {
  SizeHints hints;
  hints.min_width = 10;
  hints.max_width = 100;
  hints.width_inc = 5;
  SizeHints original = hints;
  SanitizerStats stats;
  EXPECT_FALSE(SanitizeSizeHints(&hints, &stats));
  EXPECT_EQ(hints, original);
  EXPECT_EQ(stats.Total(), 0u);
}

TEST(SanitizeClientStringTest, TruncatesAndStripsControlCharacters) {
  std::string s(xproto::kMaxWmStringBytes + 500, 'a');
  s[0] = '\x01';
  s[1] = '\n';
  s[2] = '\t';  // Tab survives.
  SanitizerStats stats;
  EXPECT_TRUE(xproto::SanitizeClientString(&s, xproto::kMaxWmStringBytes, &stats));
  EXPECT_LE(s.size(), xproto::kMaxWmStringBytes);
  EXPECT_EQ(s[0], '\t');
  EXPECT_EQ(s.find('\x01'), std::string::npos);
  EXPECT_EQ(s.find('\n'), std::string::npos);
  EXPECT_EQ(stats.strings_truncated, 1u);
}

TEST(SanitizeWmHintsTest, RejectsInvalidInitialState) {
  WmHints hints;
  hints.initial_state = static_cast<xproto::WmState>(99);
  SanitizerStats stats;
  EXPECT_TRUE(SanitizeWmHints(&hints, &stats));
  EXPECT_EQ(hints.initial_state, xproto::WmState::kNormal);
  EXPECT_EQ(stats.states_rejected, 1u);
}

TEST(SanitizeWmHintsTest, ClampsIconGeometry) {
  WmHints hints;
  hints.icon_position = {1 << 20, -(1 << 20)};
  SanitizerStats stats;
  EXPECT_TRUE(SanitizeWmHints(&hints, &stats));
  EXPECT_EQ(hints.icon_position.x, xproto::kMaxCoordinate);
  EXPECT_EQ(hints.icon_position.y, -xproto::kMaxCoordinate);
  EXPECT_EQ(stats.icon_geometry_clamped, 1u);
}

TEST(SanitizeTransientForTest, BreaksSelfReference) {
  SanitizerStats stats;
  EXPECT_EQ(xproto::SanitizeTransientFor(42, 42, &stats), xproto::kNone);
  EXPECT_EQ(stats.transient_self_broken, 1u);
  EXPECT_EQ(xproto::SanitizeTransientFor(42, 7, &stats), 7u);
  EXPECT_EQ(stats.transient_self_broken, 1u);
}

TEST(DecodeWmClassTest, WellFormedPayloadDecodesUnrepaired) {
  SanitizerStats stats;
  xproto::WmClass out;
  EXPECT_FALSE(xproto::DecodeWmClass(std::string("xterm\0XTerm\0", 12), &out, &stats));
  EXPECT_EQ(out.instance, "xterm");
  EXPECT_EQ(out.clazz, "XTerm");
  EXPECT_EQ(stats.truncated_decodes, 0u);
}

TEST(DecodeWmClassTest, MissingTrailingNulIsRepairedNotOverread) {
  // The classic malformation: "instance\0class" with no trailing NUL.  The
  // unterminated tail must be taken as written — never read past the buffer —
  // and counted as a truncated decode.
  SanitizerStats stats;
  xproto::WmClass out;
  EXPECT_TRUE(xproto::DecodeWmClass(std::string("xterm\0XTerm", 11), &out, &stats));
  EXPECT_EQ(out.instance, "xterm");
  EXPECT_EQ(out.clazz, "XTerm");
  EXPECT_EQ(stats.truncated_decodes, 1u);
}

TEST(DecodeWmClassTest, MissingSeparatorYieldsInstanceOnly) {
  SanitizerStats stats;
  xproto::WmClass out;
  EXPECT_TRUE(xproto::DecodeWmClass("xterm", &out, &stats));
  EXPECT_EQ(out.instance, "xterm");
  EXPECT_EQ(out.clazz, "");
  EXPECT_EQ(stats.truncated_decodes, 1u);
}

TEST(DecodeWmClassTest, BytesAfterTerminatorAreDroppedAndCounted) {
  SanitizerStats stats;
  xproto::WmClass out;
  EXPECT_TRUE(
      xproto::DecodeWmClass(std::string("a\0B\0garbage", 11), &out, &stats));
  EXPECT_EQ(out.instance, "a");
  EXPECT_EQ(out.clazz, "B");
  EXPECT_EQ(stats.truncated_decodes, 1u);
}

// ---- Log throttle (base/logging) -------------------------------------------

TEST(LogThrottleTest, EveryNDedupesPerKey) {
  xbase::ResetLogThrottle();
  int fired = 0;
  for (int i = 0; i < 40; ++i) {
    if (xbase::ShouldLogEveryN("throttle-test-key", 16)) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);  // Occurrences 0, 16, 32.
  EXPECT_EQ(xbase::LogThrottleCount("throttle-test-key"), 40);
  // Independent keys don't interfere.
  EXPECT_TRUE(xbase::ShouldLogEveryN("throttle-other-key", 16));
  xbase::ResetLogThrottle();
  EXPECT_EQ(xbase::LogThrottleCount("throttle-test-key"), 0);
}

// ---- Decoder integration through a Display ---------------------------------

class IcccmSanitizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
    xbase::ResetLogThrottle();
    server_ = std::make_unique<xserver::Server>(
        std::vector<xserver::ScreenConfig>{{200, 100, false}});
    dpy_ = std::make_unique<xlib::Display>(server_.get());
    window_ = dpy_->CreateWindow(dpy_->RootWindow(), {0, 0, 30, 20});
  }
  void TearDown() override {
    xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  }

  // Writes a raw WM_NORMAL_HINTS property of exactly `data` bytes.
  void WriteRawNormalHints(const std::vector<uint8_t>& data) {
    dpy_->ChangeProperty(window_, dpy_->InternAtom(xproto::kAtomWmNormalHints),
                         dpy_->InternAtom("WM_SIZE_HINTS"), 32,
                         xserver::PropMode::kReplace, data);
  }

  static void PutU32(std::vector<uint8_t>* out, uint32_t value) {
    out->push_back(static_cast<uint8_t>(value & 0xff));
    out->push_back(static_cast<uint8_t>((value >> 8) & 0xff));
    out->push_back(static_cast<uint8_t>((value >> 16) & 0xff));
    out->push_back(static_cast<uint8_t>((value >> 24) & 0xff));
  }

  std::unique_ptr<xserver::Server> server_;
  std::unique_ptr<xlib::Display> dpy_;
  xproto::WindowId window_ = xproto::kNone;
};

TEST_F(IcccmSanitizeTest, WmClassWithoutTrailingNulIsRepaired) {
  // A client that forgets the ICCCM trailing NUL still gets a usable class
  // through GetWmClass, with the repair ticked in the stats.
  std::string raw("myapp\0MyApp", 11);
  dpy_->ChangeProperty(window_, dpy_->InternAtom(xproto::kAtomWmClass),
                       dpy_->InternAtom("STRING"), 8, xserver::PropMode::kReplace,
                       std::vector<uint8_t>(raw.begin(), raw.end()));
  std::optional<xproto::WmClass> decoded = xlib::GetWmClass(dpy_.get(), window_);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->instance, "myapp");
  EXPECT_EQ(decoded->clazz, "MyApp");
  EXPECT_EQ(dpy_->sanitizer_stats().truncated_decodes, 1u);
}

TEST_F(IcccmSanitizeTest, GiantWmNameIsCapped) {
  xlib::SetWmName(dpy_.get(), window_, std::string(100000, 'x'));
  std::optional<std::string> name = xlib::GetWmName(dpy_.get(), window_);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->size(), xproto::kMaxWmStringBytes);
  EXPECT_EQ(dpy_->sanitizer_stats().strings_truncated, 1u);
}

TEST_F(IcccmSanitizeTest, GiantWmCommandIsCapped) {
  xlib::SetWmCommand(dpy_.get(), window_,
                     {std::string(3000, 'a'), std::string(3000, 'b')});
  std::optional<std::vector<std::string>> argv =
      xlib::GetWmCommand(dpy_.get(), window_);
  ASSERT_TRUE(argv.has_value());
  size_t total = 0;
  for (const std::string& arg : *argv) {
    total += arg.size();
  }
  EXPECT_LE(total, xproto::kMaxWmCommandBytes);
  EXPECT_GT(dpy_->sanitizer_stats().strings_truncated, 0u);
}

TEST_F(IcccmSanitizeTest, NormalHintsTruncatedMidFieldKeepsDecodedPrefix) {
  // flags + x + y + width + height + min_width, then 2 bytes of min_height.
  std::vector<uint8_t> data;
  PutU32(&data, xproto::kPMinSize);
  PutU32(&data, 5);
  PutU32(&data, 6);
  PutU32(&data, 30);
  PutU32(&data, 20);
  PutU32(&data, 12);  // min_width made it across.
  data.push_back(0xff);
  data.push_back(0xff);  // min_height cut mid-field.
  WriteRawNormalHints(data);

  std::optional<SizeHints> hints = xlib::GetWmNormalHints(dpy_.get(), window_);
  ASSERT_TRUE(hints.has_value());
  EXPECT_EQ(hints->flags, xproto::kPMinSize);
  EXPECT_EQ(hints->x, 5);
  EXPECT_EQ(hints->min_width, 12);
  // The cut field and everything after it take defaults.
  SizeHints defaults;
  EXPECT_EQ(hints->min_height, defaults.min_height);
  EXPECT_EQ(hints->width_inc, defaults.width_inc);
  EXPECT_GT(dpy_->sanitizer_stats().truncated_decodes, 0u);
}

TEST_F(IcccmSanitizeTest, NormalHintsZeroIncrementsRepaired) {
  SizeHints hostile;
  hostile.flags = xproto::kPResizeInc;
  hostile.width_inc = 0;
  hostile.height_inc = 0;
  xlib::SetWmNormalHints(dpy_.get(), window_, hostile);
  std::optional<SizeHints> hints = xlib::GetWmNormalHints(dpy_.get(), window_);
  ASSERT_TRUE(hints.has_value());
  EXPECT_EQ(hints->width_inc, 1);
  EXPECT_EQ(hints->height_inc, 1);
  EXPECT_EQ(dpy_->sanitizer_stats().increments_rejected, 1u);
  // The repaired hints divide safely.
  xbase::Size constrained = hints->Constrain({33, 17});
  EXPECT_GT(constrained.width, 0);
}

TEST_F(IcccmSanitizeTest, NormalHintsInvertedMinMaxSwapped) {
  SizeHints hostile;
  hostile.flags = xproto::kPMinSize | xproto::kPMaxSize;
  hostile.min_width = 900;
  hostile.max_width = 30;
  hostile.min_height = 5;
  hostile.max_height = 50;
  xlib::SetWmNormalHints(dpy_.get(), window_, hostile);
  std::optional<SizeHints> hints = xlib::GetWmNormalHints(dpy_.get(), window_);
  ASSERT_TRUE(hints.has_value());
  EXPECT_EQ(hints->min_width, 30);
  EXPECT_EQ(hints->max_width, 900);
  EXPECT_EQ(dpy_->sanitizer_stats().min_max_swapped, 1u);
}

TEST_F(IcccmSanitizeTest, TransientForSelfReferenceBroken) {
  xlib::SetTransientForHint(dpy_.get(), window_, window_);
  std::optional<xproto::WindowId> owner =
      xlib::GetTransientForHint(dpy_.get(), window_);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, xproto::kNone);
  EXPECT_EQ(dpy_->sanitizer_stats().transient_self_broken, 1u);
}

// Zero-increment regression, end to end: a client advertising width_inc=0
// must neither crash the WM nor wedge resize (satellite of the classic
// divide-by-zero).
class ZeroIncrementWmTest : public SwmTest {};

TEST_F(ZeroIncrementWmTest, ResizeWithZeroIncrementsSurvives) {
  StartWm();
  auto app = Spawn("divzero", {"divzero", "DivZero"}, {0, 0, 40, 20});
  swm::ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);

  SizeHints hostile;
  hostile.flags = xproto::kPResizeInc | xproto::kPMinSize;
  hostile.min_width = 10;
  hostile.min_height = 10;
  hostile.width_inc = 0;
  hostile.height_inc = -4;
  xlib::SetWmNormalHints(&app->display(), app->window(), hostile);
  wm_->ProcessEvents();

  // The stored hints were sanitized on the way in.
  EXPECT_GE(client->size_hints.width_inc, 1);
  EXPECT_GE(client->size_hints.height_inc, 1);

  app->RequestMoveResize({5, 5, 33, 17});
  wm_->ProcessEvents();
  std::optional<xbase::Rect> geometry = app->display().GetGeometry(app->window());
  ASSERT_TRUE(geometry.has_value());
  EXPECT_GE(geometry->width, 10);
  EXPECT_GE(geometry->height, 10);
}

// Manage-time adoption with WM_NORMAL_HINTS truncated mid-field: the WM must
// adopt the window using the decoded prefix (satellite d).
TEST_F(ZeroIncrementWmTest, ManageWithTruncatedHintsAdoptsWindow) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "torn";
  config.wm_class = {"torn", "Torn"};
  config.command = {"torn"};
  config.geometry = {0, 0, 36, 18};
  xlib::ClientApp app(server_.get(), config);
  // Replace WM_NORMAL_HINTS with a 10-byte fragment before the WM ever sees
  // the window.
  app.display().ChangeProperty(
      app.window(), app.display().InternAtom(xproto::kAtomWmNormalHints),
      app.display().InternAtom("WM_SIZE_HINTS"), 32, xserver::PropMode::kReplace,
      std::vector<uint8_t>{1, 0, 0, 0, 7, 0, 0, 0, 9, 9});
  app.Map();
  wm_->ProcessEvents();

  swm::ManagedClient* client = Managed(app);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(client->frame, nullptr);
  EXPECT_TRUE(server_->IsViewable(app.window()));
  EXPECT_GT(wm_->display().sanitizer_stats().truncated_decodes, 0u);
}

// Three-window transient_for cycle: A→B→C→A.  The WM breaks the cycle at
// manage time instead of looping (satellite d).
TEST_F(ZeroIncrementWmTest, TransientForCycleAcrossThreeWindowsBroken) {
  StartWm();
  auto a = Spawn("cyc-a", {"cyc-a", "Cyc"});
  auto b = Spawn("cyc-b", {"cyc-b", "Cyc"});

  // a → b, b → c(future), c → a.  a and b are re-read when c arrives?  No —
  // transient_for is read at manage time, so build the cycle in manage order:
  // b managed pointing at a, then c pointing at b, then rewrite a to point at
  // c and remanage a (unmap + map).
  xlib::SetTransientForHint(&b->display(), b->window(), a->window());
  b->Unmap();
  wm_->ProcessEvents();
  b->Map();
  wm_->ProcessEvents();
  ASSERT_NE(Managed(*b), nullptr);
  EXPECT_EQ(Managed(*b)->transient_for, a->window());

  auto c = Spawn("cyc-c", {"cyc-c", "Cyc"});
  xlib::SetTransientForHint(&c->display(), c->window(), b->window());
  c->Unmap();
  wm_->ProcessEvents();
  c->Map();
  wm_->ProcessEvents();
  ASSERT_NE(Managed(*c), nullptr);
  EXPECT_EQ(Managed(*c)->transient_for, b->window());

  // Closing the loop: a → c would make a→c→b→a.
  xlib::SetTransientForHint(&a->display(), a->window(), c->window());
  a->Unmap();
  wm_->ProcessEvents();
  a->Map();
  wm_->ProcessEvents();
  swm::ManagedClient* managed_a = Managed(*a);
  ASSERT_NE(managed_a, nullptr);
  EXPECT_EQ(managed_a->transient_for, xproto::kNone);
  EXPECT_GT(wm_->display().sanitizer_stats().transient_cycles_broken, 0u);
}

}  // namespace
}  // namespace swm_test
