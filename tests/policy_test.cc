// Layout-policy engine tests (docs/POLICIES.md): factory and resource
// selection, xswm conformance for the maximize policy (including the
// `close` / `last` remote-control verbs), tiling and dynamic slot geometry,
// ICCCM hint handling inside slots, the cascade satellite fixes, runtime
// policy switching over swmcmd and persistence across a WM restart.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/swm/policy/dynamic_policy.h"
#include "src/swm/policy/layout_policy.h"
#include "src/swm/policy/tiling_policy.h"
#include "src/swm/swmcmd.h"
#include "src/xlib/icccm.h"
#include "src/xserver/replay.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::CreateLayoutPolicy;
using swm::DynamicPolicy;
using swm::LayoutPolicyNames;
using swm::ManagedClient;
using swm::TilingPolicy;
using xserver::FingerprintServer;
using xserver::ServerFingerprint;

class PolicyTest : public SwmTest {
 protected:
  // swmcmd round trip: a shell client writes the property, the WM drains it.
  void Swmcmd(const std::string& command) {
    xlib::Display shell(server_.get(), "policy-shell");
    swm::SendSwmCommand(&shell, 0, command);
    wm_->ProcessEvents();
  }

  xbase::Rect Frame(const xlib::ClientApp& app) {
    ManagedClient* client = Managed(app);
    EXPECT_NE(client, nullptr);
    return client->frame->geometry();
  }

  xproto::WindowId Focus() { return wm_->display().GetInputFocus(); }
};

// ---- Factory and selection --------------------------------------------------

TEST_F(PolicyTest, FactoryKnowsAllRegisteredPolicies) {
  StartWm();
  EXPECT_EQ(LayoutPolicyNames().size(), 4u);
  for (const std::string& name : LayoutPolicyNames()) {
    auto policy = CreateLayoutPolicy(name, wm_.get());
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_EQ(CreateLayoutPolicy("cascade-of-doom", wm_.get()), nullptr);
}

TEST_F(PolicyTest, ResourceSelectsPolicy) {
  StartWm("swm.layout.policy: tiling\n");
  EXPECT_STREQ(wm_->layout_policy().name(), "tiling");
}

TEST_F(PolicyTest, UnknownResourceFallsBackToFloating) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  StartWm("swm.layout.policy: nonsense\n");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  EXPECT_STREQ(wm_->layout_policy().name(), "floating");
}

// Default == floating is a standing contract, not just a golden snapshot:
// a run with the resource set explicitly must be byte-identical to a run
// with no policy resource at all.
TEST_F(PolicyTest, ExplicitFloatingMatchesDefaultByteForByte) {
  auto run = [&](const std::string& resources) {
    StartWm(resources);
    auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
    auto b = Spawn("beta", {"beta", "Beta"}, {50, 40, 40, 20},
                   xproto::kPPosition | xproto::kPSize);
    a->RequestMoveResize({60, 10, 35, 12});
    wm_->ProcessEvents();
    b->RequestIconify();
    wm_->ProcessEvents();
    b->Map();
    wm_->ProcessEvents();
    a->display().DestroyWindow(a->window());
    wm_->ProcessEvents();
    return FingerprintServer(*server_);
  };
  ServerFingerprint implicit = run("");
  ServerFingerprint explicit_floating = run("swm.layout.policy: floating\n");
  EXPECT_EQ(implicit.total_requests, explicit_floating.total_requests);
  EXPECT_EQ(implicit.screen_hash, explicit_floating.screen_hash);
  EXPECT_EQ(implicit.draw_ops, explicit_floating.draw_ops);
  EXPECT_EQ(implicit.pixels_drawn, explicit_floating.pixels_drawn);
}

// ---- Maximize (xswm conformance) --------------------------------------------

TEST_F(PolicyTest, MaximizeFillsViewportAndFocusesNewest) {
  StartWm("swm.layout.policy: maximize\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 40, 20});
  auto c = Spawn("gamma", {"gamma", "Gamma"}, {0, 0, 20, 10});
  // Every eligible window fills the whole 200x100 viewport...
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 200, 100}));
  EXPECT_EQ(Frame(*b), (xbase::Rect{0, 0, 200, 100}));
  EXPECT_EQ(Frame(*c), (xbase::Rect{0, 0, 200, 100}));
  // ...and the newest one is focused (xswm: new windows take over).
  EXPECT_EQ(Focus(), c->window());
}

TEST_F(PolicyTest, MaximizeDeniesClientGeometry) {
  StartWm("swm.layout.policy: maximize\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  a->ProcessEvents();
  int notified_before = a->configure_notify_count();
  a->RequestMoveResize({10, 10, 30, 20});
  wm_->ProcessEvents();
  a->ProcessEvents();
  // The slot is reasserted and the client is told its actual geometry via a
  // synthetic ConfigureNotify (ICCCM denial).
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 200, 100}));
  EXPECT_GT(a->configure_notify_count(), notified_before);
}

TEST_F(PolicyTest, MaximizeTransientsKeepFloatingSemantics) {
  StartWm("swm.layout.policy: maximize\n");
  auto owner = Spawn("owner", {"owner", "Owner"}, {0, 0, 30, 10});

  xlib::ClientAppConfig config;
  config.name = "dialog";
  config.wm_class = {"dialog", "Dialog"};
  config.command = {"dialog"};
  config.geometry = {20, 30, 40, 16};
  config.size_hint_flags = xproto::kUSPosition | xproto::kUSSize;
  auto dialog = std::make_unique<xlib::ClientApp>(server_.get(), config);
  xlib::SetTransientForHint(&dialog->display(), dialog->window(), owner->window());
  dialog->Map();
  wm_->ProcessEvents();

  // The owner is maximized; the transient keeps its requested size and
  // user position instead of being swallowed by the slot.
  EXPECT_EQ(Frame(*owner).size(), (xbase::Size{200, 100}));
  ManagedClient* dialog_client = Managed(*dialog);
  ASSERT_NE(dialog_client, nullptr);
  EXPECT_EQ(server_->GetGeometry(dialog->window())->size(), (xbase::Size{40, 16}));
  EXPECT_EQ(dialog_client->ClientDesktopPosition(), (xbase::Point{20, 30}));
}

TEST_F(PolicyTest, MaximizeCloseVerbIsPoliteThenForceful) {
  StartWm("swm.layout.policy: maximize\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  xlib::SetWmProtocols(&b->display(), b->window(), {"WM_DELETE_WINDOW"});

  // `swmcmd close` on a WM_DELETE_WINDOW speaker: polite message, window
  // stays managed until the client acts.
  Swmcmd("close");
  b->ProcessEvents();
  EXPECT_TRUE(b->saw_delete_window());
  EXPECT_NE(Managed(*b), nullptr);

  // A client without the protocol is disconnect-killed, and focus falls
  // back to the previously focused window.
  auto c = Spawn("gamma", {"gamma", "Gamma"}, {0, 0, 30, 10});
  EXPECT_EQ(Focus(), c->window());
  Swmcmd("close");
  EXPECT_EQ(wm_->FindClient(c->window()), nullptr);
  EXPECT_EQ(Focus(), b->window());
}

TEST_F(PolicyTest, MaximizeLastVerbSwapsBetweenTopTwo) {
  StartWm("swm.layout.policy: maximize\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  auto c = Spawn("gamma", {"gamma", "Gamma"}, {0, 0, 30, 10});
  EXPECT_EQ(Focus(), c->window());
  Swmcmd("last");
  EXPECT_EQ(Focus(), b->window());
  Swmcmd("last");  // xswm: `last` toggles between the top two.
  EXPECT_EQ(Focus(), c->window());
}

TEST_F(PolicyTest, MaximizeIconifyPassesFocusAndDeiconifyReclaimsIt) {
  StartWm("swm.layout.policy: maximize\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  EXPECT_EQ(Focus(), b->window());
  wm_->Iconify(Managed(*b));
  wm_->ProcessEvents();
  EXPECT_EQ(Focus(), a->window());
  wm_->Deiconify(wm_->FindClient(b->window()));
  wm_->ProcessEvents();
  EXPECT_EQ(Focus(), b->window());
  EXPECT_EQ(Frame(*b), (xbase::Rect{0, 0, 200, 100}));
}

// ---- Tiling -----------------------------------------------------------------

TEST(TilingSlotsTest, RecursiveSplitCoversViewportExactly) {
  for (size_t count = 1; count <= 6; ++count) {
    std::vector<xbase::Rect> slots = TilingPolicy::SplitSlots({200, 100}, count);
    ASSERT_EQ(slots.size(), count);
    long long area = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      const xbase::Rect& slot = slots[i];
      EXPECT_GE(slot.x, 0);
      EXPECT_GE(slot.y, 0);
      EXPECT_LE(slot.x + slot.width, 200);
      EXPECT_LE(slot.y + slot.height, 100);
      area += static_cast<long long>(slot.width) * slot.height;
      for (size_t j = i + 1; j < slots.size(); ++j) {
        bool disjoint = slots[j].x >= slot.x + slot.width ||
                        slot.x >= slots[j].x + slots[j].width ||
                        slots[j].y >= slot.y + slot.height ||
                        slot.y >= slots[j].y + slots[j].height;
        EXPECT_TRUE(disjoint) << "slots " << i << " and " << j << " overlap";
      }
    }
    EXPECT_EQ(area, 200 * 100) << count << " slots must tile the viewport";
  }
}

TEST(TilingSlotsTest, AlternatingCutsFormASpiral) {
  std::vector<xbase::Rect> slots = TilingPolicy::SplitSlots({200, 100}, 3);
  EXPECT_EQ(slots[0], (xbase::Rect{0, 0, 100, 100}));   // Left half.
  EXPECT_EQ(slots[1], (xbase::Rect{100, 0, 100, 50}));  // Top of the right.
  EXPECT_EQ(slots[2], (xbase::Rect{100, 50, 100, 50}));
}

TEST_F(PolicyTest, TilingPlacesWindowsInManageOrder) {
  StartWm("swm.layout.policy: tiling\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  auto c = Spawn("gamma", {"gamma", "Gamma"}, {0, 0, 30, 10});
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 100, 100}));
  EXPECT_EQ(Frame(*b), (xbase::Rect{100, 0, 100, 50}));
  EXPECT_EQ(Frame(*c), (xbase::Rect{100, 50, 100, 50}));
}

TEST_F(PolicyTest, TilingReflowsSurvivorsOnUnmanage) {
  StartWm("swm.layout.policy: tiling\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  auto c = Spawn("gamma", {"gamma", "Gamma"}, {0, 0, 30, 10});
  a->display().DestroyWindow(a->window());
  wm_->ProcessEvents();
  // Manage order is preserved: beta now leads the split.
  EXPECT_EQ(Frame(*b), (xbase::Rect{0, 0, 100, 100}));
  EXPECT_EQ(Frame(*c), (xbase::Rect{100, 0, 100, 100}));
}

// ---- Dynamic ----------------------------------------------------------------

TEST(DynamicSlotsTest, GridCoversViewportExactly) {
  for (size_t count = 1; count <= 7; ++count) {
    std::vector<xbase::Rect> slots = DynamicPolicy::GridSlots({200, 100}, count);
    ASSERT_EQ(slots.size(), count);
    long long area = 0;
    for (const xbase::Rect& slot : slots) {
      area += static_cast<long long>(slot.width) * slot.height;
    }
    EXPECT_EQ(area, 200 * 100) << count << " grid cells must tile the viewport";
  }
  std::vector<xbase::Rect> quad = DynamicPolicy::GridSlots({200, 100}, 4);
  EXPECT_EQ(quad[0], (xbase::Rect{0, 0, 100, 50}));
  EXPECT_EQ(quad[3], (xbase::Rect{100, 50, 100, 50}));
}

TEST_F(PolicyTest, DynamicReflowsOnIconifyAndDeiconify) {
  StartWm("swm.layout.policy: dynamic\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 100, 100}));
  EXPECT_EQ(Frame(*b), (xbase::Rect{100, 0, 100, 100}));
  wm_->Iconify(Managed(*b));
  wm_->ProcessEvents();
  // The survivor reclaims the whole viewport...
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 200, 100}));
  wm_->Deiconify(wm_->FindClient(b->window()));
  wm_->ProcessEvents();
  // ...and splits again on deiconify.
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 100, 100}));
  EXPECT_EQ(Frame(*b), (xbase::Rect{100, 0, 100, 100}));
}

// ---- ICCCM hints inside slots -----------------------------------------------

TEST_F(PolicyTest, MaxSizeHintedClientCentersInItsSlot) {
  StartWm("swm.layout.policy: maximize\n");
  xlib::ClientAppConfig config;
  config.name = "capped";
  config.wm_class = {"capped", "Capped"};
  config.command = {"capped"};
  config.geometry = {0, 0, 40, 20};
  auto app = std::make_unique<xlib::ClientApp>(server_.get(), config);
  xproto::SizeHints hints;
  hints.flags = xproto::kPSize | xproto::kPMaxSize;
  hints.width = 40;
  hints.height = 20;
  hints.max_width = 40;
  hints.max_height = 20;
  xlib::SetWmNormalHints(&app->display(), app->window(), hints);
  app->Map();
  wm_->ProcessEvents();

  // The slot grant is constrained by WM_NORMAL_HINTS: the client keeps its
  // hinted maximum and the frame centers in the viewport slot.
  EXPECT_EQ(server_->GetGeometry(app->window())->size(), (xbase::Size{40, 20}));
  xbase::Rect frame = Frame(*app);
  EXPECT_EQ(frame.x, (200 - frame.width) / 2);
  EXPECT_EQ(frame.y, (100 - frame.height) / 2);
}

TEST_F(PolicyTest, ResizeIncrementHintsHonoredInTilingSlots) {
  StartWm("swm.layout.policy: tiling\n");
  xlib::ClientAppConfig config;
  config.name = "stepped";
  config.wm_class = {"stepped", "Stepped"};
  config.command = {"stepped"};
  config.geometry = {0, 0, 30, 10};
  auto app = std::make_unique<xlib::ClientApp>(server_.get(), config);
  xproto::SizeHints hints;
  hints.flags = xproto::kPSize | xproto::kPResizeInc;
  hints.width = 30;
  hints.height = 10;
  hints.width_inc = 7;
  hints.height_inc = 9;
  xlib::SetWmNormalHints(&app->display(), app->window(), hints);
  app->Map();
  wm_->ProcessEvents();

  // No base/min size is set, so Constrain steps from 0: exact multiples.
  xbase::Size client = server_->GetGeometry(app->window())->size();
  EXPECT_EQ(client.width % 7, 0) << "width must sit on an increment";
  EXPECT_EQ(client.height % 9, 0) << "height must sit on an increment";
}

// ---- Cascade satellites -----------------------------------------------------

TEST_F(PolicyTest, CascadeClampsWindowsThatNoLongerFit) {
  StartWm();  // floating, 200x100 screen.
  auto big1 = Spawn("big1", {"big1", "Big"}, {0, 0, 180, 80});
  auto big2 = Spawn("big2", {"big2", "Big"}, {0, 0, 180, 80});
  // First lands at the cascade origin; the second would start at (32,32)
  // and hang off-screen, so it clamps back to (8,8) instead.
  EXPECT_EQ(Managed(*big1)->ClientDesktopPosition(), (xbase::Point{8, 8}));
  EXPECT_EQ(Managed(*big2)->ClientDesktopPosition(), (xbase::Point{8, 8}));
}

TEST_F(PolicyTest, CascadeResetsAfterViewportPan) {
  StartWm("swm*virtualDesktop: 400x300\n");
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  EXPECT_EQ(Managed(*a)->ClientDesktopPosition(), (xbase::Point{8, 8}));
  ASSERT_TRUE(wm_->ExecuteCommandString("f.pan(30,20)", 0));
  // The cascade re-anchors to the new viewport rather than continuing at
  // (32,32) of the old one.
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  EXPECT_EQ(Managed(*b)->ClientDesktopPosition(), (xbase::Point{38, 28}));
}

// ---- Runtime switching and persistence --------------------------------------

TEST_F(PolicyTest, SwmcmdPolicySwitchRelaysOutTheWholePopulation) {
  StartWm();
  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});

  Swmcmd("policy maximize");
  EXPECT_STREQ(wm_->layout_policy().name(), "maximize");
  EXPECT_EQ(Frame(*a).size(), (xbase::Size{200, 100}));
  EXPECT_EQ(Frame(*b).size(), (xbase::Size{200, 100}));

  Swmcmd("policy tiling");
  EXPECT_STREQ(wm_->layout_policy().name(), "tiling");
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 100, 100}));
  EXPECT_EQ(Frame(*b), (xbase::Rect{100, 0, 100, 100}));

  Swmcmd("policy floating");
  EXPECT_STREQ(wm_->layout_policy().name(), "floating");
  // Floating does not force geometry: windows keep their tiled frames and
  // regain control over their own ConfigureRequests.
  a->RequestMoveResize({10, 10, 30, 10});
  wm_->ProcessEvents();
  EXPECT_NE(Frame(*a), (xbase::Rect{0, 0, 100, 100}));
}

TEST_F(PolicyTest, UnknownPolicyNameRejectedAndCurrentKept) {
  StartWm("swm.layout.policy: tiling\n");
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  EXPECT_FALSE(wm_->ExecuteCommandString("policy bogus", 0));
  EXPECT_FALSE(wm_->SetLayoutPolicy(""));
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  EXPECT_STREQ(wm_->layout_policy().name(), "tiling");
}

TEST_F(PolicyTest, FPolicyFunctionSwitchesToo) {
  StartWm();
  ASSERT_TRUE(wm_->ExecuteCommandString("f.policy(dynamic)", 0));
  EXPECT_STREQ(wm_->layout_policy().name(), "dynamic");
}

TEST_F(PolicyTest, PolicySurvivesWmRestart) {
  StartWm();
  ASSERT_TRUE(wm_->SetLayoutPolicy("tiling"));
  // f.restart persists session state onto SWM_RESTART_INFO...
  wm_->PersistSessionState();
  wm_.reset();
  // ...and the successor adopts the recorded policy before managing anything.
  swm::WindowManager::Options options;
  options.template_name = "openlook";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
  ASSERT_TRUE(wm_->Start());
  EXPECT_STREQ(wm_->layout_policy().name(), "tiling");

  auto a = Spawn("alpha", {"alpha", "Alpha"}, {0, 0, 30, 10});
  auto b = Spawn("beta", {"beta", "Beta"}, {0, 0, 30, 10});
  EXPECT_EQ(Frame(*a), (xbase::Rect{0, 0, 100, 100}));
  EXPECT_EQ(Frame(*b), (xbase::Rect{100, 0, 100, 100}));
}

TEST(RestartTablePolicyTest, PolicyLineRoundTripsAndIsNotARecord) {
  swm::RestartTable table = swm::RestartTable::FromPropertyText(
      "swmhints -geometry 40x12+1+2 -cmd xterm\n"
      "policy maximize\n");
  EXPECT_EQ(table.size(), 1u);  // The policy line is not a malformed record.
  ASSERT_TRUE(table.policy_name().has_value());
  EXPECT_EQ(*table.policy_name(), "maximize");
  swm::RestartTable reparsed =
      swm::RestartTable::FromPropertyText(table.ToPropertyText());
  ASSERT_TRUE(reparsed.policy_name().has_value());
  EXPECT_EQ(*reparsed.policy_name(), "maximize");
  EXPECT_EQ(reparsed.size(), 1u);
}

}  // namespace
}  // namespace swm_test
