// Extensions beyond the core: desktop scrollbars (paper §6's first panning
// method), resizeCorners handles (§4.1.1), and multiple Virtual Desktops
// (the §6.3.1 proposal).
#include "src/swm/scrollbars.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using swm::DesktopScrollbars;
using swm::ManagedClient;

class ScrollbarTest : public SwmTest {
 protected:
  void StartWithScrollbars() {
    StartWm(
        "swm*virtualDesktop: 800x400\n"
        "swm*panner: False\n"
        "swm*scrollbars: True\n");
    bars_ = wm_->scrollbars(0);
    ASSERT_NE(bars_, nullptr);
  }

  DesktopScrollbars* bars_ = nullptr;
};

TEST_F(ScrollbarTest, BarsCreatedAlongEdges) {
  StartWithScrollbars();
  auto hgeo = server_->GetGeometry(bars_->horizontal());
  auto vgeo = server_->GetGeometry(bars_->vertical());
  ASSERT_TRUE(hgeo.has_value());
  ASSERT_TRUE(vgeo.has_value());
  EXPECT_EQ(hgeo->y, 99);  // Bottom edge of the 200x100 screen.
  EXPECT_EQ(vgeo->x, 199);
  EXPECT_TRUE(server_->IsViewable(bars_->horizontal()));
  // They are children of the real root: stuck to the glass.
  EXPECT_EQ(server_->QueryTree(bars_->horizontal())->parent, server_->RootWindow(0));
}

TEST_F(ScrollbarTest, NoBarsWithoutResourceOrDesktop) {
  StartWm("swm*virtualDesktop: 800x400\nswm*panner: False\n");
  EXPECT_EQ(wm_->scrollbars(0), nullptr);
}

TEST_F(ScrollbarTest, ThumbReflectsOffset) {
  StartWithScrollbars();
  wm_->ExecuteCommandString("f.panTo(400, 0)", 0);
  wm_->ProcessEvents();
  // Desktop 800 wide, track 199 cells: thumb at 199*400/800 = 99.
  const xserver::WindowRec* rec = server_->FindWindowForTest(bars_->horizontal());
  ASSERT_FALSE(rec->draw_ops.empty());
  EXPECT_EQ(rec->draw_ops.back().rect.x, 199 * 400 / 800);
}

TEST_F(ScrollbarTest, ClickPansHorizontally) {
  StartWithScrollbars();
  // Click near the end of the horizontal track: pan toward the right edge.
  Click({150, 99});
  int expected = bars_->TrackToDesktopX(150);
  EXPECT_EQ(wm_->vdesk(0)->offset().x,
            std::clamp(expected, 0, 800 - 200));
  EXPECT_EQ(wm_->vdesk(0)->offset().y, 0);
}

TEST_F(ScrollbarTest, DragPansVertically) {
  StartWithScrollbars();
  server_->SimulateMotion({199, 20});
  wm_->ProcessEvents();
  server_->SimulateButton(1, true);
  wm_->ProcessEvents();
  int after_press = wm_->vdesk(0)->offset().y;
  server_->SimulateMotion({199, 80});
  wm_->ProcessEvents();
  int after_drag = wm_->vdesk(0)->offset().y;
  server_->SimulateButton(1, false);
  wm_->ProcessEvents();
  EXPECT_GT(after_drag, after_press);
  EXPECT_EQ(wm_->vdesk(0)->offset().x, 0);
}

TEST_F(SwmTest, ResizeCornersCreatedWhenConfigured) {
  // The openlook template ships "Swm*panel.openLook.resizeCorners: True".
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  for (const char* name : {"resizeUL", "resizeUR", "resizeLL", "resizeLR"}) {
    oi::Object* corner = client->frame->FindDescendant(name);
    ASSERT_NE(corner, nullptr) << name;
    EXPECT_TRUE(corner->floating());
  }
  // Pinned to the frame corners.
  xbase::Size frame = client->FrameGeometry().size();
  EXPECT_EQ(client->frame->FindDescendant("resizeUL")->geometry().origin(),
            (xbase::Point{0, 0}));
  EXPECT_EQ(client->frame->FindDescendant("resizeLR")->geometry().origin(),
            (xbase::Point{frame.width - 1, frame.height - 1}));
}

TEST_F(SwmTest, ResizeCornersAbsentWhenDisabled) {
  StartWm("Swm*panel.openLook.resizeCorners: False\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_EQ(Managed(*app)->frame->FindDescendant("resizeLR"), nullptr);
}

TEST_F(SwmTest, ResizeCornerDragResizes) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  ManagedClient* client = Managed(*app);
  oi::Object* corner = client->frame->FindDescendant("resizeLR");
  ASSERT_NE(corner, nullptr);
  xbase::Point pos = ObjectRootPos(corner);
  server_->SimulateMotion(pos);
  wm_->ProcessEvents();
  server_->SimulateButton(1, true);
  wm_->ProcessEvents();
  server_->SimulateMotion({pos.x + 10, pos.y + 6});
  wm_->ProcessEvents();
  server_->SimulateButton(1, false);
  wm_->ProcessEvents();
  EXPECT_EQ(server_->GetGeometry(app->window())->size(), (xbase::Size{50, 18}));
  // The corners followed the resize.
  xbase::Size frame = client->FrameGeometry().size();
  EXPECT_EQ(client->frame->FindDescendant("resizeLR")->geometry().origin(),
            (xbase::Point{frame.width - 1, frame.height - 1}));
}

class MultiDesktopTest : public SwmTest {
 protected:
  void StartWithDesktops(int count) {
    StartWm(
        "swm*virtualDesktop: 800x400\n"
        "swm*virtualDesktops: " + std::to_string(count) + "\n"
        "swm*panner: False\n"
        "swm*XClock*sticky: True\n");
  }
};

TEST_F(MultiDesktopTest, DesktopsCreatedOnlyActiveMapped) {
  StartWithDesktops(3);
  EXPECT_EQ(wm_->DesktopCount(0), 3);
  EXPECT_EQ(wm_->ActiveDesktop(0), 0);
  EXPECT_TRUE(server_->IsViewable(wm_->vdesk(0)->window()));
}

TEST_F(MultiDesktopTest, SwitchHidesOtherDesktopsWindows) {
  StartWithDesktops(2);
  auto app0 = Spawn("editor", {"editor", "Editor"});
  ASSERT_TRUE(server_->IsViewable(app0->window()));
  xproto::WindowId desk0 = wm_->vdesk(0)->window();

  ASSERT_TRUE(wm_->SwitchDesktop(0, 1));
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->ActiveDesktop(0), 1);
  // editor lives on desktop 0: hidden now, but still mapped on its desktop.
  EXPECT_FALSE(server_->IsViewable(app0->window()));
  EXPECT_NE(wm_->vdesk(0)->window(), desk0);

  // A client spawned now lands on desktop 1.
  auto app1 = Spawn("mail", {"mail", "Mail"});
  EXPECT_TRUE(server_->IsViewable(app1->window()));
  EXPECT_EQ(server_->QueryTree(wm_->FindClient(app1->window())->frame->window())->parent,
            wm_->vdesk(0)->window());

  // Back to desktop 0: editor returns, mail hides.
  ASSERT_TRUE(wm_->SwitchDesktop(0, 0));
  EXPECT_TRUE(server_->IsViewable(app0->window()));
  EXPECT_FALSE(server_->IsViewable(app1->window()));
}

TEST_F(MultiDesktopTest, StickyWindowsVisibleOnAllDesktops) {
  StartWithDesktops(2);
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  ASSERT_TRUE(Managed(*clock)->sticky);
  EXPECT_TRUE(server_->IsViewable(clock->window()));
  wm_->SwitchDesktop(0, 1);
  EXPECT_TRUE(server_->IsViewable(clock->window()));
}

TEST_F(MultiDesktopTest, FunctionsDriveSwitching) {
  StartWithDesktops(3);
  wm_->ExecuteCommandString("f.desktop(2)", 0);
  EXPECT_EQ(wm_->ActiveDesktop(0), 2);
  wm_->ExecuteCommandString("f.nextDesktop", 0);
  EXPECT_EQ(wm_->ActiveDesktop(0), 0);  // Wraps around.
  wm_->ExecuteCommandString("f.desktop(99)", 0);  // Out of range: ignored.
  EXPECT_EQ(wm_->ActiveDesktop(0), 0);
}

TEST_F(MultiDesktopTest, EachDesktopPansIndependently) {
  StartWithDesktops(2);
  wm_->ExecuteCommandString("f.panTo(300, 100)", 0);
  EXPECT_EQ(wm_->vdesk(0)->offset(), (xbase::Point{300, 100}));
  wm_->SwitchDesktop(0, 1);
  EXPECT_EQ(wm_->vdesk(0)->offset(), (xbase::Point{0, 0}));
  wm_->SwitchDesktop(0, 0);
  EXPECT_EQ(wm_->vdesk(0)->offset(), (xbase::Point{300, 100}));
}

TEST_F(MultiDesktopTest, SwmRootNamesTheClientsOwnDesktop) {
  StartWithDesktops(2);
  auto app0 = Spawn("editor", {"editor", "Editor"});
  xproto::WindowId desk0 = wm_->vdesk(0)->window();
  wm_->SwitchDesktop(0, 1);
  auto app1 = Spawn("mail", {"mail", "Mail"});
  EXPECT_EQ(app0->display().GetWindowIdProperty(app0->window(), xproto::kAtomSwmRoot),
            desk0);
  EXPECT_EQ(app1->display().GetWindowIdProperty(app1->window(), xproto::kAtomSwmRoot),
            wm_->vdesk(0)->window());
}

TEST_F(SwmTest, FocusFunctionSetsInputFocus) {
  StartWm();
  auto a = Spawn("alpha", {"alpha", "Alpha"});
  auto b = Spawn("beta", {"beta", "Beta"});
  EXPECT_EQ(server_->GetInputFocus(), xproto::kNone);  // Pointer-root default.
  wm_->ExecuteCommandString("f.focus(Alpha)", 0);
  wm_->ProcessEvents();
  EXPECT_EQ(server_->GetInputFocus(), a->window());
  // f.focus deiconifies and raises too.
  wm_->Iconify(Managed(*b));
  wm_->ExecuteCommandString("f.focus(Beta)", 0);
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*b)->state, xproto::WmState::kNormal);
  EXPECT_EQ(server_->GetInputFocus(), b->window());
  // Destroying the focused window reverts to pointer-root.
  b->display().DestroyWindow(b->window());
  wm_->ProcessEvents();
  EXPECT_EQ(server_->GetInputFocus(), xproto::kNone);
}

TEST_F(SwmTest, FocusedWindowReceivesKeysRegardlessOfPointer) {
  StartWm();
  auto app = Spawn("ed", {"ed", "Editor"});
  app->display().SelectInput(app->window(), xproto::kStructureNotifyMask |
                                                xproto::kKeyPressMask);
  wm_->ExecuteCommandString("f.focus(Editor)", 0);
  wm_->ProcessEvents();
  server_->SimulateMotion({199, 99});  // Pointer far from the window.
  wm_->ProcessEvents();
  server_->SimulateKey(xtb::InternKeySym("a"), true);
  bool got_key = false;
  app->display().DrainEvents([&](const xproto::Event& event) {
    if (const auto* key = std::get_if<xproto::KeyEvent>(&event)) {
      got_key = key->window == app->window();
    }
  });
  EXPECT_TRUE(got_key);
}

TEST_F(SwmTest, CirculateFunctions) {
  StartWm();
  auto a = Spawn("a", {"a", "A"});
  auto b = Spawn("b", {"b", "B"});
  auto c = Spawn("c", {"c", "C"});
  auto order = [&]() {
    std::vector<xproto::WindowId> out;
    xserver::QueryTreeReply tree = *server_->QueryTree(server_->RootWindow(0));
    for (xproto::WindowId w : tree.children) {
      if (swm::ManagedClient* client = wm_->FindClientByAnyWindow(w)) {
        out.push_back(client->window);
      }
    }
    return out;
  };
  ASSERT_EQ(order(), (std::vector<xproto::WindowId>{a->window(), b->window(),
                                                    c->window()}));
  wm_->ExecuteCommandString("f.circleUp", 0);  // Lowest (a) goes to top.
  EXPECT_EQ(order(), (std::vector<xproto::WindowId>{b->window(), c->window(),
                                                    a->window()}));
  wm_->ExecuteCommandString("f.circleDown", 0);  // Topmost (a) goes back down.
  EXPECT_EQ(order(), (std::vector<xproto::WindowId>{a->window(), b->window(),
                                                    c->window()}));
}

TEST_F(SwmTest, ClientIconWindowIsReparentedIntoIcon) {
  // §4.1.2: "or has specified its own icon window, that image is displayed
  // in the iconimage button."
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "fancy";
  config.wm_class = {"fancy", "Fancy"};
  xlib::ClientApp app(server_.get(), config);
  xproto::WindowId icon_win =
      app.display().CreateWindow(app.display().RootWindow(0), {0, 0, 12, 6});
  app.display().SetWindowBackground(icon_win, 'I');
  xproto::WmHints hints;
  hints.flags = xproto::kIconWindowHint;
  hints.icon_window = icon_win;
  xlib::SetWmHints(&app.display(), app.window(), hints);
  app.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(app.window());
  wm_->Iconify(client);
  wm_->ProcessEvents();

  ASSERT_TRUE(client->uses_icon_window);
  oi::Object* slot = client->icon->FindDescendant("iconimage");
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(server_->QueryTree(icon_win)->parent, slot->window());
  EXPECT_TRUE(server_->IsViewable(icon_win));
  // The slot adopted the icon window's size.
  EXPECT_EQ(slot->geometry().size(), (xbase::Size{12, 6}));

  // Unmanaging returns the icon window to the client on the root.
  app.display().DestroyWindow(app.window());
  wm_->ProcessEvents();
  ASSERT_TRUE(server_->WindowExists(icon_win));
  EXPECT_EQ(server_->QueryTree(icon_win)->parent, server_->RootWindow(0));
}

TEST_F(SwmTest, DragIntoPannerDropsAtMiniaturePosition) {
  // §6.1's reverse flow: a move started on the client window, finished
  // inside the panner, drops the window anywhere on the desktop.
  StartWm(
      "swm*virtualDesktop: 800x400\n"
      "swm*panner: True\n"
      "swm*pannerScale: 10\n"
      "Swm*button.name.bindings: <Btn1> : f.move\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  ManagedClient* client = Managed(*app);
  swm::Panner* panner = wm_->panner(0);
  ASSERT_NE(panner, nullptr);

  // Start the move on the title button...
  xbase::Point title = ObjectRootPos(client->name_object);
  server_->SimulateMotion({title.x + 1, title.y + 1});
  wm_->ProcessEvents();
  server_->SimulateButton(1, true);
  wm_->ProcessEvents();
  // ...drag into the panner and release at cell (50, 25).
  xbase::Point porigin = server_->RootPosition(panner->window());
  server_->SimulateMotion({porigin.x + 50, porigin.y + 25});
  wm_->ProcessEvents();
  server_->SimulateButton(1, false);
  wm_->ProcessEvents();

  EXPECT_EQ(client->FrameGeometry().origin(), (xbase::Point{500, 250}));
}

TEST_F(SwmTest, BorderWidthAttribute) {
  StartWm("Swm*button.name.borderWidth: 2\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  const xserver::WindowRec* rec =
      server_->FindWindowForTest(Managed(*app)->name_object->window());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->border_width, 2);
}

TEST_F(SwmTest, IconHolderScrolls) {
  StartWm(
      "swm*iconHolders: box\n"
      "swm*iconHolder.box.geometry: 46x20+100+4\n");
  swm::IconHolder* box = wm_->icon_holders(0)[0];
  auto a = Spawn("a", {"a", "A"});
  auto b = Spawn("b", {"b", "B"});
  wm_->Iconify(Managed(*a));
  wm_->Iconify(Managed(*b));
  wm_->ProcessEvents();
  // Two xlogo icons stacked: content much taller than the 20-cell holder.
  ASSERT_GT(box->content_height(), 20);
  int a_y = Managed(*a)->icon->geometry().y;
  box->ScrollBy(15);
  EXPECT_EQ(box->scroll_offset(), 15);
  EXPECT_EQ(Managed(*a)->icon->geometry().y, a_y - 15);
  // Clamped at the content bottom and at zero.
  box->ScrollBy(100000);
  EXPECT_EQ(box->scroll_offset(), box->content_height() - 20);
  box->ScrollBy(-100000);
  EXPECT_EQ(box->scroll_offset(), 0);
}

}  // namespace
}  // namespace swm_test
