// Differential tests for the hardened X wire codec (docs/PROTOCOL.md):
// encode → decode must be the identity for every request, event and error
// type the subset implements, including boundary values (±kMaxCoordinate
// coordinates, zero-length properties, cap-sized payloads); and every
// malformed frame — truncated, oversized, misaligned, length-lying — must
// come back as a typed ParseError, never a crash or an overread.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/xproto/error.h"
#include "src/xproto/events.h"
#include "src/xproto/trace.h"
#include "src/xproto/types.h"
#include "src/xproto/wire.h"

namespace xproto {
namespace {

// ---- Request round-trips ----------------------------------------------------

// Encode, decode, and require the result to equal the input bit for bit.
void ExpectRequestRoundTrip(const Request& request) {
  std::vector<uint8_t> bytes = EncodeRequestBytes(request);
  SCOPED_TRACE(WireRequestName(request) + " (" + std::to_string(bytes.size()) + " bytes)");
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes.size() % 4, 0u) << "frames are 4-byte aligned";
  // The header length field counts 4-byte units including the header.
  size_t header_len = (static_cast<size_t>(bytes[2]) | static_cast<size_t>(bytes[3]) << 8) * 4;
  EXPECT_EQ(header_len, bytes.size());

  Request decoded;
  ParseError error;
  size_t consumed = DecodeRequest(bytes, &decoded, &error);
  ASSERT_EQ(consumed, bytes.size()) << ParseErrorText(error);
  EXPECT_TRUE(request == decoded);
}

// One exemplar per request type, with boundary values where the wire
// representation has edges.
std::vector<Request> AllRequestExemplars() {
  std::vector<Request> all;
  all.push_back(CreateWindowRequest{.parent = 1,
                                    .geometry = {-kMaxCoordinate, kMaxCoordinate, 65535, 1},
                                    .border_width = 65535,
                                    .window_class = WindowClass::kInputOnly,
                                    .override_redirect = true});
  all.push_back(CreateWindowRequest{});  // All defaults.
  all.push_back(DestroyWindowRequest{.window = 0xFFFFFFFFu});
  all.push_back(MapWindowRequest{.window = 7});
  all.push_back(UnmapWindowRequest{.window = 7});
  all.push_back(ReparentWindowRequest{
      .window = 3, .parent = 4, .position = {-kMaxCoordinate, kMaxCoordinate}});
  all.push_back(ConfigureWindowRequest{.window = 9, .value_mask = 0});  // Empty LISTofVALUE.
  all.push_back(ConfigureWindowRequest{
      .window = 9,
      .value_mask = kConfigX | kConfigY | kConfigWidth | kConfigHeight | kConfigBorderWidth |
                    kConfigSibling | kConfigStackMode,
      .geometry = {-kMaxCoordinate, kMaxCoordinate, 1, 2},
      .border_width = 5,
      .sibling = 11,
      .stack_mode = StackMode::kOpposite});
  all.push_back(ConfigureWindowRequest{
      .window = 2, .value_mask = kConfigStackMode, .stack_mode = StackMode::kBottomIf});
  all.push_back(SelectInputRequest{.window = 5, .event_mask = 0xFFFFFFFFu});
  all.push_back(ChangeSaveSetRequest{.window = 6, .add = false});
  all.push_back(ChangePropertyRequest{.window = 8,
                                      .property = 2,
                                      .type = 3,
                                      .format = 8,
                                      .mode = 2,
                                      .data = {}});  // Zero-length property.
  all.push_back(ChangePropertyRequest{
      .window = 8,
      .property = 2,
      .type = 3,
      .format = 32,
      .mode = 0,
      .data = std::vector<uint8_t>(4096, 0xAB)});
  all.push_back(DeletePropertyRequest{.window = 8, .property = 2});
  all.push_back(SendEventRequest{.destination = 12,
                                 .event_mask = kPropertyChangeMask,
                                 .event = PropertyNotifyEvent{.window = 12,
                                                              .atom = 44,
                                                              .state = PropertyState::kDeleted,
                                                              .time = 123456789}});
  all.push_back(SetInputFocusRequest{.window = kNone});
  all.push_back(GrabButtonRequest{
      .window = 13, .button = kMaxButton, .modifiers = 0x11, .event_mask = 0x22});
  all.push_back(GrabButtonRequest{.window = 13, .button = 0});  // AnyButton.
  all.push_back(UngrabButtonRequest{.window = 13, .button = 1, .modifiers = 0});
  all.push_back(ClearWindowRequest{.window = 14});
  all.push_back(SetWindowBackgroundRequest{.window = 15, .background = '#'});
  all.push_back(SetCursorRequest{.window = 16, .name = ""});
  all.push_back(SetCursorRequest{.window = 16, .name = "question_arrow"});
  all.push_back(DrawRequest{.window = 17,
                            .kind = 0,
                            .rect = {-kMaxCoordinate, kMaxCoordinate, 80, 24},
                            .fill = '~'});
  all.push_back(DrawRequest{.window = 17,
                            .kind = 2,
                            .rect = {1, 2, 3, 4},
                            .fill = ' ',
                            .text = std::string(100, 'x')});
  all.push_back(DrawRequest{.window = 17,
                            .kind = 4,
                            .rect = {0, 0, 8, 4},
                            .bitmap_width = 8,
                            .bitmap_height = 4,
                            .bitmap_cells = std::vector<uint8_t>(32, 1)});
  all.push_back(ShapeRegionRequest{.window = 18, .rects = {}});
  all.push_back(ShapeRegionRequest{
      .window = 18,
      .rects = {{0, 0, 10, 10}, {-kMaxCoordinate, kMaxCoordinate, 65535, 65535}}});
  all.push_back(ShapeClearRequest{.window = 19});
  all.push_back(ShapeSelectRequest{.window = 20, .enable = true});
  // Reply-bearing queries.
  all.push_back(GetWindowAttributesRequest{.window = 21});
  all.push_back(GetGeometryRequest{.window = 0xFFFFFFFFu});
  all.push_back(QueryTreeRequest{.window = 22});
  all.push_back(InternAtomRequest{.name = ""});
  all.push_back(InternAtomRequest{.name = "WM_PROTOCOLS"});
  all.push_back(InternAtomRequest{.name = std::string(kMaxWireStringBytes, 'a')});
  all.push_back(GetAtomNameRequest{.atom = 31});
  all.push_back(GetPropertyRequest{.window = 23, .property = 32});
  all.push_back(TranslateCoordinatesRequest{
      .src = 24, .dst = 25, .point = {-kMaxCoordinate, kMaxCoordinate}});
  all.push_back(QueryScreensRequest{});
  all.push_back(QueryClientWindowsRequest{});
  return all;
}

TEST(WireRequestRoundTrip, EveryRequestTypeIsIdentity) {
  for (const Request& request : AllRequestExemplars()) {
    ExpectRequestRoundTrip(request);
  }
}

TEST(WireRequestRoundTrip, ConfigureWindowEveryMaskSubset) {
  // The LISTofVALUE encoding is mask-driven; exercise all 128 subsets.
  for (uint16_t mask = 0; mask < 128; ++mask) {
    ConfigureWindowRequest request;
    request.window = 1;
    request.value_mask = mask;
    request.geometry = {-5, 7, 300, 200};
    request.border_width = 2;
    request.sibling = 42;
    request.stack_mode = StackMode::kBelow;
    // Fields not covered by the mask don't travel; zero them so the decoded
    // struct (which leaves them defaulted) compares equal.
    if (!(mask & kConfigX)) request.geometry.x = 0;
    if (!(mask & kConfigY)) request.geometry.y = 0;
    if (!(mask & kConfigWidth)) request.geometry.width = 0;
    if (!(mask & kConfigHeight)) request.geometry.height = 0;
    if (!(mask & kConfigBorderWidth)) request.border_width = 0;
    if (!(mask & kConfigSibling)) request.sibling = kNone;
    if (!(mask & kConfigStackMode)) request.stack_mode = StackMode::kAbove;
    ExpectRequestRoundTrip(request);
  }
}

TEST(WireRequestRoundTrip, BackToBackFramesDecodeInSequence) {
  WireWriter w;
  std::vector<Request> sent = AllRequestExemplars();
  for (const Request& request : sent) {
    EncodeRequest(request, &w);
  }
  std::span<const uint8_t> buffer = w.span();
  size_t offset = 0;
  for (const Request& request : sent) {
    Request decoded;
    ParseError error;
    size_t consumed = DecodeRequest(buffer.subspan(offset), &decoded, &error);
    ASSERT_GT(consumed, 0u) << ParseErrorText(error);
    EXPECT_TRUE(request == decoded);
    offset += consumed;
  }
  EXPECT_EQ(offset, buffer.size());
}

// ---- Event round-trips ------------------------------------------------------

void ExpectEventRoundTrip(const Event& event) {
  SCOPED_TRACE(EventName(event));
  std::vector<uint8_t> bytes = EncodeEventBytes(event, 0xBEEF);
  ASSERT_EQ(bytes.size(), kEventWireBytes);
  Event decoded;
  ParseError error;
  uint16_t sequence = 0;
  ASSERT_EQ(DecodeEvent(bytes, &decoded, &error, &sequence), kEventWireBytes)
      << ParseErrorText(error);
  EXPECT_EQ(sequence, 0xBEEF);
  EXPECT_TRUE(event == decoded);
}

std::vector<Event> AllEventExemplars() {
  std::vector<Event> all;
  all.push_back(ButtonEvent{.press = true,
                            .window = 1,
                            .subwindow = 2,
                            .button = kMaxButton,
                            .modifiers = 0x15,
                            .root_pos = {-kMaxCoordinate, kMaxCoordinate},
                            .pos = {3, -4},
                            .time = 0xDEADBEEFCAFEull});
  all.push_back(ButtonEvent{.press = false, .window = 1, .button = 1});
  all.push_back(MotionEvent{
      .window = 1, .subwindow = 0, .modifiers = 1, .root_pos = {5, 6}, .pos = {7, 8}});
  all.push_back(KeyEvent{.press = true, .window = 2, .keysym = 0xFF0D, .modifiers = 4});
  all.push_back(KeyEvent{.press = false, .window = 2, .keysym = 'q'});
  all.push_back(CrossingEvent{.enter = true, .window = 3, .root_pos = {1, 1}, .pos = {0, 0}});
  all.push_back(CrossingEvent{.enter = false, .window = 3});
  all.push_back(ExposeEvent{.window = 4, .area = {0, 0, 65535, 65535}, .count = -1});
  all.push_back(CreateNotifyEvent{
      .parent = 5, .window = 6, .geometry = {1, 2, 3, 4}, .override_redirect = true});
  all.push_back(DestroyNotifyEvent{.event_window = 7, .window = 8});
  all.push_back(MapRequestEvent{.parent = 9, .window = 10});
  all.push_back(MapNotifyEvent{.event_window = 11, .window = 12, .override_redirect = true});
  all.push_back(UnmapNotifyEvent{.event_window = 13, .window = 14, .from_configure = true});
  all.push_back(ReparentNotifyEvent{.event_window = 15,
                                    .window = 16,
                                    .parent = 17,
                                    .pos = {-100, 100},
                                    .override_redirect = false});
  all.push_back(ConfigureRequestEvent{.parent = 18,
                                      .window = 19,
                                      .value_mask = kConfigX | kConfigStackMode,
                                      .geometry = {9, 8, 7, 6},
                                      .border_width = 1,
                                      .sibling = 20,
                                      .stack_mode = StackMode::kOpposite});
  all.push_back(ConfigureNotifyEvent{.event_window = 21,
                                     .window = 22,
                                     .geometry = {-1, -2, 30, 40},
                                     .border_width = 3,
                                     .above_sibling = 23,
                                     .override_redirect = true,
                                     .synthetic = true});
  all.push_back(CirculateRequestEvent{.parent = 24, .window = 25, .place_on_top = false});
  all.push_back(PropertyNotifyEvent{
      .window = 26, .atom = 27, .state = PropertyState::kDeleted, .time = 99});
  all.push_back(ClientMessageEvent{
      .window = 28, .message_type = 29, .format = 32, .data = {1, 2, 3, 4, 5}});
  all.push_back(ClientMessageEvent{.window = 28, .message_type = 29, .format = 8});
  all.push_back(FocusEvent{.in = true, .window = 30});
  all.push_back(FocusEvent{.in = false, .window = 31});
  all.push_back(ShapeNotifyEvent{.window = 32, .shaped = true, .extents = {0, 0, 5, 5}});
  return all;
}

TEST(WireEventRoundTrip, EveryEventTypeIsIdentity) {
  for (const Event& event : AllEventExemplars()) {
    ExpectEventRoundTrip(event);
  }
}

TEST(WireErrorRoundTrip, ErrorFrameIsIdentity) {
  XError error;
  error.code = ErrorCode::kBadLength;
  error.request = RequestCode::kDraw;
  error.resource_id = 0xABCD1234u;
  error.sequence = 1207;
  WireWriter w;
  EncodeError(error, &w);
  ASSERT_EQ(w.bytes().size(), kEventWireBytes);
  XError decoded;
  ParseError parse_error;
  ASSERT_EQ(DecodeError(w.span(), &decoded, &parse_error), kEventWireBytes);
  EXPECT_EQ(decoded.code, error.code);
  EXPECT_EQ(decoded.request, error.request);
  EXPECT_EQ(decoded.resource_id, error.resource_id);
  EXPECT_EQ(decoded.sequence, error.sequence);
}

// ---- Malformed-frame rejection ----------------------------------------------

ParseError DecodeExpectingFailure(std::span<const uint8_t> bytes) {
  Request decoded;
  ParseError error;
  EXPECT_EQ(DecodeRequest(bytes, &decoded, &error), 0u);
  return error;
}

TEST(WireRequestRejects, EmptyAndShortBuffers) {
  EXPECT_EQ(DecodeExpectingFailure({}).code, ParseErrorCode::kTruncated);
  std::vector<uint8_t> three = {8, 0, 1};
  EXPECT_EQ(DecodeExpectingFailure(three).code, ParseErrorCode::kTruncated);
}

TEST(WireRequestRejects, UnknownOpcode) {
  std::vector<uint8_t> frame = {99, 0, 2, 0, 1, 0, 0, 0};
  ParseError error = DecodeExpectingFailure(frame);
  EXPECT_EQ(error.code, ParseErrorCode::kBadOpcode);
  EXPECT_EQ(error.opcode, 99);
}

TEST(WireRequestRejects, ZeroLengthField) {
  std::vector<uint8_t> frame = {8, 0, 0, 0, 1, 0, 0, 0};
  EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kBadLength);
}

TEST(WireRequestRejects, LengthFieldBeyondBuffer) {
  std::vector<uint8_t> frame = EncodeRequestBytes(MapWindowRequest{.window = 1});
  frame[2] = 0x40;  // Claim 256 bytes; the buffer has 8.
  frame[3] = 0;
  EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kTruncated);
}

TEST(WireRequestRejects, OversizedLengthField) {
  std::vector<uint8_t> frame = EncodeRequestBytes(MapWindowRequest{.window = 1});
  frame[2] = 0xFF;  // 0xFFFF units = 256KB > kMaxRequestBytes.
  frame[3] = 0xFF;
  EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kOversized);
}

TEST(WireRequestRejects, LengthLongerThanPayloadNeeds) {
  // A frame padded out beyond what its payload decodes to is a length lie.
  std::vector<uint8_t> frame = EncodeRequestBytes(MapWindowRequest{.window = 1});
  frame.resize(frame.size() + 4, 0);
  frame[2] = static_cast<uint8_t>(frame.size() / 4);
  EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kBadLength);
}

TEST(WireRequestRejects, EmbeddedPropertyLengthLie) {
  // The ChangeProperty data_len claims more bytes than the frame carries.
  std::vector<uint8_t> frame = EncodeRequestBytes(ChangePropertyRequest{
      .window = 1, .property = 2, .type = 3, .format = 8, .mode = 0,
      .data = {1, 2, 3, 4}});
  // data_len lives 16 bytes into the payload (after window/property/type,
  // format + 3 pad): header(4) + 12 + 4 = offset 20.
  frame[20] = 0xFF;
  frame[21] = 0xFF;
  ParseError error = DecodeExpectingFailure(frame);
  EXPECT_EQ(error.code, ParseErrorCode::kBadLength);
}

TEST(WireRequestRejects, BadEnumValues) {
  {
    std::vector<uint8_t> frame = EncodeRequestBytes(CreateWindowRequest{.parent = 1});
    frame[1] = 7;  // Window class must be 0/1.
    EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kBadValue);
  }
  {
    std::vector<uint8_t> frame = EncodeRequestBytes(GrabButtonRequest{.window = 1, .button = 1});
    frame[1] = kMaxButton + 1;
    EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kBadValue);
  }
  {
    std::vector<uint8_t> frame = EncodeRequestBytes(ConfigureWindowRequest{
        .window = 1, .value_mask = kConfigStackMode, .stack_mode = StackMode::kAbove});
    // StackMode value slot: header(4) + window(4) + mask(2) + pad(2) = 12.
    frame[12] = 200;
    EXPECT_EQ(DecodeExpectingFailure(frame).code, ParseErrorCode::kBadValue);
  }
}

TEST(WireRequestRejects, OversizedDrawBitmap) {
  WireWriter w;
  w.BeginRequest(static_cast<uint8_t>(WireOpcode::kDraw), 4);
  w.U32(1);             // window
  w.I16(0); w.I16(0); w.U16(8); w.U16(8);  // rect
  w.U8(' '); w.U8(0);
  w.U16(0);             // text_len
  w.U16(300); w.U16(300);  // 90000 cells > kMaxWireBitmapCells
  w.CloseRequest();
  EXPECT_EQ(DecodeExpectingFailure(w.span()).code, ParseErrorCode::kOversized);
}

TEST(WireRequestRejects, TruncationSweepNeverCrashes) {
  // Every proper prefix of every exemplar frame must fail cleanly.  Under
  // ASan/UBSan this is the no-overread guarantee.
  for (const Request& request : AllRequestExemplars()) {
    std::vector<uint8_t> frame = EncodeRequestBytes(request);
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      Request decoded;
      ParseError error;
      EXPECT_EQ(DecodeRequest(std::span<const uint8_t>(frame.data(), cut), &decoded, &error),
                0u)
          << WireRequestName(request) << " prefix " << cut;
    }
  }
}

TEST(WireEventRejects, ShortUnknownAndBadDetail) {
  Event decoded;
  ParseError error;
  std::vector<uint8_t> short_frame(16, 0);
  EXPECT_EQ(DecodeEvent(short_frame, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kTruncated);

  std::vector<uint8_t> unknown(kEventWireBytes, 0);
  unknown[0] = 200;
  EXPECT_EQ(DecodeEvent(unknown, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kBadOpcode);

  std::vector<uint8_t> bad_button = EncodeEventBytes(ButtonEvent{.window = 1, .button = 1}, 0);
  bad_button[1] = kMaxButton + 1;
  EXPECT_EQ(DecodeEvent(bad_button, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kBadValue);
}

// ---- Trace container round-trip ---------------------------------------------

TEST(TraceRoundTrip, SerializeParseIsIdentity) {
  TraceRecorder recorder;
  recorder.RecordConnect(3, "wm-host");
  recorder.RecordConnect(4, "");
  std::vector<uint8_t> frame = EncodeRequestBytes(MapWindowRequest{.window = 9});
  recorder.RecordRequestBytes(3, frame);
  recorder.RecordMotion(-50, 50);
  recorder.RecordButton(1, true, 0x8);
  recorder.RecordButton(1, false, 0);
  recorder.RecordKey(0xFF0D, true, 1);
  recorder.RecordWarp(0, 10, 20);
  recorder.RecordPump();
  recorder.RecordDisconnect(4);
  recorder.RecordExpect(17, 5, 1234);

  std::vector<uint8_t> bytes = SerializeTrace(recorder.trace());
  ParseError error;
  std::optional<Trace> parsed = ParseTrace(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << ParseErrorText(error);
  ASSERT_EQ(parsed->records.size(), recorder.trace().records.size());
  for (size_t i = 0; i < parsed->records.size(); ++i) {
    EXPECT_TRUE(parsed->records[i] == recorder.trace().records[i]) << "record " << i;
  }
}

TEST(TraceRoundTrip, RejectsCorruptContainers) {
  TraceRecorder recorder;
  recorder.RecordConnect(1, "host");
  std::vector<uint8_t> bytes = SerializeTrace(recorder.trace());
  ParseError error;

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseTrace(bad_magic, &error).has_value());
  EXPECT_EQ(error.code, ParseErrorCode::kBadOpcode);

  std::vector<uint8_t> bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_FALSE(ParseTrace(bad_version, &error).has_value());
  EXPECT_EQ(error.code, ParseErrorCode::kBadValue);

  // Every truncation of the container fails cleanly (or parses a shorter
  // record list; never reads past the end).
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ParseTrace(std::span<const uint8_t>(bytes.data(), cut), &error);
  }

  std::vector<uint8_t> bad_type = bytes;
  bad_type[8] = 0x7F;  // Record type header byte.
  EXPECT_FALSE(ParseTrace(bad_type, &error).has_value());
  EXPECT_EQ(error.code, ParseErrorCode::kBadOpcode);
}

// ---- Reply round-trips ------------------------------------------------------

void ExpectReplyRoundTrip(const Reply& reply) {
  SCOPED_TRACE(WireReplyName(reply));
  std::vector<uint8_t> bytes = EncodeReplyBytes(reply, 0xCAFE);
  ASSERT_GE(bytes.size(), kMinReplyBytes) << "replies are at least 32 bytes";
  EXPECT_EQ(bytes.size() % 4, 0u) << "reply frames are 4-byte aligned";
  EXPECT_EQ(bytes[0], 1) << "reply frames start with a one byte";
  // The extra-length field counts 4-byte units beyond the 32-byte minimum.
  uint32_t extra = static_cast<uint32_t>(bytes[4]) | (static_cast<uint32_t>(bytes[5]) << 8) |
                   (static_cast<uint32_t>(bytes[6]) << 16) |
                   (static_cast<uint32_t>(bytes[7]) << 24);
  EXPECT_EQ(kMinReplyBytes + static_cast<size_t>(extra) * 4, bytes.size());

  Reply decoded;
  ParseError error;
  uint16_t sequence = 0;
  ASSERT_EQ(DecodeReply(bytes, &decoded, &error, &sequence), bytes.size())
      << ParseErrorText(error);
  EXPECT_EQ(sequence, 0xCAFE);
  EXPECT_TRUE(reply == decoded);
}

std::vector<Reply> AllReplyExemplars() {
  std::vector<Reply> all;
  all.push_back(AttributesReply{.window = 1,
                                .window_class = WindowClass::kInputOnly,
                                .map_state = MapState::kViewable,
                                .override_redirect = true,
                                .all_event_masks = 0xFFFFFFFFu,
                                .border_width = 65535});
  all.push_back(AttributesReply{});  // All defaults.
  all.push_back(GeometryReply{
      .window = 2, .geometry = {-kMaxCoordinate, kMaxCoordinate, 65535, 1}, .border_width = 7});
  all.push_back(TreeReply{.window = 3, .root = 1, .parent = 2, .children = {}});
  std::vector<WindowId> children(500);
  for (size_t i = 0; i < children.size(); ++i) {
    children[i] = static_cast<WindowId>(i + 100);
  }
  all.push_back(TreeReply{.window = 3, .root = 1, .parent = 2, .children = children});
  all.push_back(AtomReply{.atom = 0xFFFFFFFFu});
  all.push_back(AtomNameReply{.atom = 5, .name = ""});
  all.push_back(AtomNameReply{.atom = 5, .name = "WM_DELETE_WINDOW"});
  all.push_back(AtomNameReply{.atom = 6, .name = std::string(kMaxWireStringBytes, 'n')});
  all.push_back(PropertyReply{.window = 7, .property = 8, .found = false});
  all.push_back(PropertyReply{.window = 7,
                              .property = 8,
                              .found = true,
                              .type = 9,
                              .format = 32,
                              .data = std::vector<uint8_t>(4096, 0xCD)});
  all.push_back(PropertyReply{
      .window = 7, .property = 8, .found = true, .type = 9, .format = 16, .data = {}});
  all.push_back(CoordinatesReply{.position = {-kMaxCoordinate, kMaxCoordinate}});
  all.push_back(ScreensReply{});
  all.push_back(ScreensReply{.screens = {{.root = 1, .width = 80, .height = 24, .monochrome = true},
                                         {.root = 2, .width = 65535, .height = 1}}});
  all.push_back(ClientWindowsReply{});
  std::vector<WindowId> owned(300);
  for (size_t i = 0; i < owned.size(); ++i) {
    owned[i] = static_cast<WindowId>(i * 3 + 2);
  }
  all.push_back(ClientWindowsReply{.windows = owned});
  return all;
}

TEST(WireReplyRoundTrip, EveryReplyTypeIsIdentity) {
  for (const Reply& reply : AllReplyExemplars()) {
    ExpectReplyRoundTrip(reply);
  }
}

TEST(WireReplyRoundTrip, BackToBackReplyFramesDecodeInSequence) {
  WireWriter w;
  std::vector<Reply> sent = AllReplyExemplars();
  uint16_t seq = 1;
  for (const Reply& reply : sent) {
    EncodeReply(reply, seq++, &w);
  }
  std::span<const uint8_t> buffer = w.span();
  size_t offset = 0;
  seq = 1;
  for (const Reply& reply : sent) {
    Reply decoded;
    ParseError error;
    uint16_t decoded_seq = 0;
    size_t consumed = DecodeReply(buffer.subspan(offset), &decoded, &error, &decoded_seq);
    ASSERT_GT(consumed, 0u) << ParseErrorText(error);
    EXPECT_EQ(decoded_seq, seq++);
    EXPECT_TRUE(reply == decoded);
    offset += consumed;
  }
  EXPECT_EQ(offset, buffer.size());
}

// Every reply type, every truncation point: a frame cut anywhere must come
// back as a typed ParseError, never a crash, overread, or bogus success.
TEST(WireReplyRejects, TruncationSweepOverEveryReplyType) {
  for (const Reply& reply : AllReplyExemplars()) {
    SCOPED_TRACE(WireReplyName(reply));
    std::vector<uint8_t> bytes = EncodeReplyBytes(reply, 7);
    // Sweep every prefix of small frames; sample larger ones (every cut
    // within the first/last 64 bytes plus every 7th in between).
    for (size_t len = 0; len < bytes.size(); ++len) {
      if (bytes.size() > 160 && len > 64 && len + 64 < bytes.size() && len % 7 != 0) {
        continue;
      }
      Reply decoded;
      ParseError error;
      EXPECT_EQ(DecodeReply(std::span(bytes.data(), len), &decoded, &error), 0u)
          << "prefix of " << len << " bytes decoded";
      EXPECT_EQ(error.code, ParseErrorCode::kTruncated);
    }
  }
}

TEST(WireReplyRejects, FirstByteMustBeOne) {
  std::vector<uint8_t> bytes = EncodeReplyBytes(AtomReply{.atom = 3}, 0);
  for (uint8_t first : {0, 2, 255}) {
    bytes[0] = first;
    Reply decoded;
    ParseError error;
    EXPECT_EQ(DecodeReply(bytes, &decoded, &error), 0u);
    EXPECT_EQ(error.code, ParseErrorCode::kBadOpcode);
  }
}

TEST(WireReplyRejects, UnknownReplyOpcode) {
  std::vector<uint8_t> bytes = EncodeReplyBytes(AtomReply{.atom = 3}, 0);
  bytes[1] = 99;  // No query has opcode 99.
  Reply decoded;
  ParseError error;
  EXPECT_EQ(DecodeReply(bytes, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kBadOpcode);
}

TEST(WireReplyRejects, OversizedExtraLength) {
  std::vector<uint8_t> bytes = EncodeReplyBytes(AtomReply{.atom = 3}, 0);
  bytes[4] = 0xFF;
  bytes[5] = 0xFF;
  bytes[6] = 0xFF;
  bytes[7] = 0xFF;
  Reply decoded;
  ParseError error;
  EXPECT_EQ(DecodeReply(bytes, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kOversized);
}

TEST(WireReplyRejects, ExtraLengthDisagreesWithPayload) {
  // Pad a valid frame by one 4-byte unit and fix up the extra-length field:
  // the strict framing check must reject the lie.
  std::vector<uint8_t> bytes = EncodeReplyBytes(CoordinatesReply{.position = {1, 2}}, 0);
  bytes.resize(bytes.size() + 4, 0);
  uint32_t extra = static_cast<uint32_t>((bytes.size() - kMinReplyBytes) / 4);
  bytes[4] = static_cast<uint8_t>(extra);
  Reply decoded;
  ParseError error;
  EXPECT_EQ(DecodeReply(bytes, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kBadLength);
}

TEST(WireReplyRejects, BadEnumValuesRejected) {
  std::vector<uint8_t> bytes = EncodeReplyBytes(AttributesReply{.window = 1}, 0);
  bytes[8 + 4] = 9;  // window_class: only 0/1 are valid.
  Reply decoded;
  ParseError error;
  EXPECT_EQ(DecodeReply(bytes, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kBadValue);
}

TEST(WireReplyRejects, ChildCountLie) {
  std::vector<uint8_t> bytes =
      EncodeReplyBytes(TreeReply{.window = 1, .root = 1, .parent = 1, .children = {2, 3}}, 0);
  // Child count lives after window/root/parent: payload offset 12, frame
  // offset 8 + 12 = 20.  Claim more children than the frame carries.
  bytes[20] = 0xF0;
  Reply decoded;
  ParseError error;
  EXPECT_EQ(DecodeReply(bytes, &decoded, &error), 0u);
  EXPECT_EQ(error.code, ParseErrorCode::kBadLength);
}

}  // namespace
}  // namespace xproto
