// Seeded byte-level wire fuzzing (docs/PROTOCOL.md): a hostile client's
// request stream passes through the FaultPlan's wire mutations — bit flips,
// length-field lies, mid-message truncation, opcode scrambling — before the
// parser sees it, while swm manages the session above.  The codec's contract
// under every mutation is a typed ParseError (surfaced as an X error on the
// connection), never a crash, an overread, or UB; tools/check.sh runs this
// suite under ASan+UBSan to hold it to that.  Same seed, same bytes: a
// failing seed reproduces exactly.
#include <memory>
#include <string>
#include <vector>

#include "src/xproto/wire.h"
#include "src/xserver/faults.h"
#include "tests/swm_test_util.h"

namespace swm_test {
namespace {

using xproto::ParseError;
using xproto::Request;

// A stream of plausible requests for the mutator to chew on, drawn from the
// driver stream so every seed sends different traffic.
std::vector<uint8_t> BuildRequestBuffer(xserver::FaultRng* driver,
                                        xproto::WindowId root, int frames) {
  xproto::WireWriter w;
  for (int i = 0; i < frames; ++i) {
    switch (driver->Range(0, 7)) {
      case 0:
        xproto::EncodeRequest(
            xproto::CreateWindowRequest{
                .parent = root,
                .geometry = {driver->Range(-20, 150), driver->Range(-20, 80),
                             driver->Range(1, 60), driver->Range(1, 40)}},
            &w);
        break;
      case 1:
        xproto::EncodeRequest(
            xproto::MapWindowRequest{.window = static_cast<xproto::WindowId>(
                                         driver->Range(1, 40))},
            &w);
        break;
      case 2:
        xproto::EncodeRequest(
            xproto::ConfigureWindowRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .value_mask = xproto::kConfigX | xproto::kConfigY,
                .geometry = {driver->Range(-50, 200), driver->Range(-50, 100), 0, 0}},
            &w);
        break;
      case 3: {
        std::vector<uint8_t> payload(static_cast<size_t>(driver->Range(0, 64)));
        for (uint8_t& b : payload) {
          b = static_cast<uint8_t>(driver->Next() % 256);
        }
        xproto::EncodeRequest(
            xproto::ChangePropertyRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .property = static_cast<xproto::AtomId>(driver->Range(1, 30)),
                .type = 1,
                .format = 8,
                .mode = static_cast<uint8_t>(driver->Range(0, 2)),
                .data = payload},
            &w);
        break;
      }
      case 4:
        xproto::EncodeRequest(
            xproto::DrawRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .kind = static_cast<uint8_t>(driver->Range(0, 3)),
                .rect = {0, 0, driver->Range(1, 30), driver->Range(1, 20)},
                .fill = '#',
                .text = std::string(static_cast<size_t>(driver->Range(0, 20)), 'x')},
            &w);
        break;
      case 5:
        xproto::EncodeRequest(
            xproto::SetCursorRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .name = "question_arrow"},
            &w);
        break;
      case 6:
        xproto::EncodeRequest(
            xproto::SelectInputRequest{
                .window = static_cast<xproto::WindowId>(driver->Range(1, 40)),
                .event_mask = static_cast<uint32_t>(driver->Next())},
            &w);
        break;
      case 7:
        xproto::EncodeRequest(
            xproto::DestroyWindowRequest{.window = static_cast<xproto::WindowId>(
                                             driver->Range(1, 40))},
            &w);
        break;
    }
  }
  return w.Take();
}

class WireFuzzTest : public SwmTest, public ::testing::WithParamInterface<uint64_t> {
 protected:
  void SetUp() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal); }
  void TearDown() override { xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning); }
};

TEST_P(WireFuzzTest, MutatedStreamsNeverCrashTheParserOrTheWm) {
  uint64_t seed = GetParam();
  StartWm();
  auto app = Spawn("victim", {"victim", "Victim"});

  xserver::FaultPlan plan;
  plan.seed = seed;
  plan.bitflip_request_permille = 300;
  plan.lie_length_permille = 150;
  plan.truncate_request_permille = 150;
  plan.scramble_opcode_permille = 150;
  server_->InstallFaultPlan(plan);

  xserver::FaultRng driver(seed * 0x9e3779b9u + 7);
  xproto::ClientId hostile = server_->Connect("hostile-host");

  size_t dispatched = 0;
  size_t parse_errors = 0;
  for (int round = 0; round < 40; ++round) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " + std::to_string(round));
    std::vector<uint8_t> buffer =
        BuildRequestBuffer(&driver, server_->RootWindow(0), driver.Range(1, 6));
    xserver::Server::DispatchResult result = server_->DispatchBytes(hostile, buffer);
    dispatched += result.requests_dispatched;
    parse_errors += result.parse_errors;
    // Whatever the mutations did, the WM must keep managing its session:
    // every client it still tracks really exists (the hostile stream may
    // legitimately have destroyed some — including the victim's).
    wm_->ProcessEvents();
    for (swm::ManagedClient* mc : wm_->Clients()) {
      ASSERT_TRUE(server_->WindowExists(mc->window));
    }
    ASSERT_TRUE(server_->HasClient(hostile));
  }

  // The harness must actually have attacked something this seed...
  EXPECT_GT(server_->fault_counters().WireMutations(), 0u) << "seed " << seed;
  // ...and the parse-error counter must agree with what dispatch reported.
  EXPECT_EQ(server_->wire_parse_errors(), parse_errors);
  // The honest frames that survived mutation were really executed.
  EXPECT_GT(dispatched, 0u);

  // The server must still render and process a clean session end to end.
  server_->ClearFaultPlan();
  auto survivor = Spawn("survivor", {"survivor", "Survivor"});
  wm_->ProcessEvents();
  ASSERT_NE(Managed(*survivor), nullptr);
  server_->RenderScreen(0);
}

INSTANTIATE_TEST_SUITE_P(WireFuzzSeeds, WireFuzzTest, ::testing::Range<uint64_t>(1, 25));

// ---- Pure-codec adversarial sweeps (no server) ------------------------------

TEST(WireCodecFuzz, SeededGarbageBuffersNeverCrash) {
  // Uniform garbage at every small size; the decoder must fail (or decode a
  // frame that happens to be valid) without ever reading out of bounds.
  xserver::FaultRng rng(0xC0FFEE);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> buffer(static_cast<size_t>(rng.Range(0, 96)));
    for (uint8_t& b : buffer) {
      b = static_cast<uint8_t>(rng.Next() % 256);
    }
    Request decoded;
    ParseError error;
    xproto::DecodeRequest(buffer, &decoded, &error);
    xproto::Event event;
    xproto::DecodeEvent(buffer, &event, &error);
    xproto::XError xerror;
    xproto::DecodeError(buffer, &xerror, &error);
    xproto::ParseTrace(buffer, &error);
  }
}

TEST(WireCodecFuzz, EveryOpcodeTimesGarbagePayload) {
  // Structured attack: a valid header for every opcode value (0..255) over a
  // garbage payload of every 4-byte-aligned size up to 64.
  xserver::FaultRng rng(0xFACADE);
  for (int opcode = 0; opcode < 256; ++opcode) {
    for (size_t payload = 0; payload <= 64; payload += 4) {
      std::vector<uint8_t> frame(4 + payload);
      frame[0] = static_cast<uint8_t>(opcode);
      frame[1] = static_cast<uint8_t>(rng.Next() % 256);
      frame[2] = static_cast<uint8_t>(frame.size() / 4);
      frame[3] = 0;
      for (size_t i = 4; i < frame.size(); ++i) {
        frame[i] = static_cast<uint8_t>(rng.Next() % 256);
      }
      Request decoded;
      ParseError error;
      xproto::DecodeRequest(frame, &decoded, &error);
    }
  }
}

TEST(WireCodecFuzz, MalformedFramesRaiseXErrorsOnTheConnection) {
  // DispatchBytes surfaces parse errors through the PR-3 error channel: the
  // client's handler sees BadRequest/BadLength/BadValue, sequence numbers
  // advance, and the rest of the buffer is dropped.
  xserver::Server server;
  xlib::Display dpy(&server, "hostile");
  std::vector<xproto::XError> seen;
  dpy.SetErrorHandler([&](const xproto::XError& e) { seen.push_back(e); });

  std::vector<uint8_t> buffer = {99, 0, 1, 0};  // Unknown opcode.
  std::vector<uint8_t> tail =
      xproto::EncodeRequestBytes(xproto::MapWindowRequest{.window = 1});
  buffer.insert(buffer.end(), tail.begin(), tail.end());

  uint64_t seq_before = server.SequenceNumber(dpy.client_id());
  xserver::Server::DispatchResult result = server.DispatchBytes(dpy.client_id(), buffer);
  EXPECT_EQ(result.parse_errors, 1u);
  EXPECT_EQ(result.requests_dispatched, 0u) << "buffer poisoned after framing error";
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].code, xproto::ErrorCode::kBadRequest);
  EXPECT_EQ(server.SequenceNumber(dpy.client_id()), seq_before + 1);
  EXPECT_EQ(server.wire_parse_errors(), 1u);

  // A length lie maps to BadLength.
  std::vector<uint8_t> lie = xproto::EncodeRequestBytes(xproto::MapWindowRequest{.window = 1});
  lie[2] = 0xFF;
  lie[3] = 0xFF;
  server.DispatchBytes(dpy.client_id(), lie);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].code, xproto::ErrorCode::kBadLength);
}

}  // namespace
}  // namespace swm_test
