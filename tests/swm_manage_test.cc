// Managing, decorating and unmanaging clients (paper §4.1.1, §3).
#include "tests/swm_test_util.h"

#include "src/xlib/icccm.h"

namespace swm_test {
namespace {

using swm::ManagedClient;

TEST_F(SwmTest, SecondWindowManagerIsRejected) {
  StartWm();
  swm::WindowManager::Options options;
  swm::WindowManager second(server_.get(), options);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  EXPECT_FALSE(second.Start());
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
}

TEST_F(SwmTest, MapRequestLeadsToReparentedDecoratedClient) {
  StartWm();
  auto app = Spawn("xclock", {"xclock", "XClock"});
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->name, "xclock");
  EXPECT_EQ(client->decoration_name, "openLook");  // From the template.
  ASSERT_NE(client->frame, nullptr);
  ASSERT_NE(client->client_panel, nullptr);

  // The client window is now a child of the `client` panel, viewable, and
  // its WM_STATE is Normal.
  EXPECT_EQ(server_->QueryTree(app->window())->parent, client->client_panel->window());
  EXPECT_TRUE(server_->IsViewable(app->window()));
  auto state = xlib::GetWmState(&app->display(), app->window());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->state, xproto::WmState::kNormal);

  // The decoration has the paper's four objects.
  EXPECT_NE(client->frame->FindDescendant("pulldown"), nullptr);
  EXPECT_NE(client->frame->FindDescendant("nail"), nullptr);
  ASSERT_NE(client->name_object, nullptr);
  EXPECT_EQ(static_cast<oi::Button*>(client->name_object)->label(), "xclock");

  // Client saw exactly one reparent.
  EXPECT_EQ(app->reparent_count(), 1);
}

TEST_F(SwmTest, OverrideRedirectWindowsAreNotManaged) {
  StartWm();
  xlib::Display popup_owner(server_.get(), "p");
  xproto::WindowId popup = popup_owner.CreateWindow(
      popup_owner.RootWindow(0), {0, 0, 10, 10}, 0, /*override_redirect=*/true);
  popup_owner.MapWindow(popup);
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->FindClient(popup), nullptr);
  EXPECT_TRUE(server_->IsViewable(popup));
}

TEST_F(SwmTest, SpecificDecorationResource) {
  // "swm.color.screen0.XClock.xclock.decoration: shapeit" — per-class
  // decoration via specific resources (§3).
  StartWm("swm.color.screen0.XClock.xclock.decoration: shapeit\n");
  auto clock = Spawn("xclock", {"xclock", "XClock"});
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_EQ(Managed(*clock)->decoration_name, "shapeit");
  EXPECT_EQ(Managed(*term)->decoration_name, "openLook");
}

TEST_F(SwmTest, DecorationNoneFallsBackToBareContainer) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  StartWm("swm*XTerm*decoration: noSuchPanel\n");
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  ManagedClient* client = Managed(*term);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(client->client_panel, nullptr);
  EXPECT_TRUE(server_->IsViewable(term->window()));
}

TEST_F(SwmTest, BrokenDecorationWithoutClientPanelGetsOne) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  StartWm(
      "swm*XTerm*decoration: broken\n"
      "swm*panel.broken: button name +C+0\n");
  auto term = Spawn("xterm", {"xterm", "XTerm"});
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
  ManagedClient* client = Managed(*term);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(client->client_panel, nullptr);
  EXPECT_EQ(server_->QueryTree(term->window())->parent, client->client_panel->window());
}

TEST_F(SwmTest, ShapedClientGetsShapedDecoration) {
  // §5: "swm*shaped*decoration: shapeit" lets oclock run without visible
  // decoration.
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "oclock";
  config.wm_class = {"oclock", "Clock"};
  config.command = {"oclock"};
  config.geometry = {0, 0, 20, 20};
  config.shaped = true;
  xlib::ClientApp oclock(server_.get(), config);
  oclock.Map();
  wm_->ProcessEvents();

  ManagedClient* client = wm_->FindClient(oclock.window());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->shaped);
  EXPECT_EQ(client->decoration_name, "shapeit");
  // The frame is shaped to its children (just the client panel).
  EXPECT_TRUE(server_->IsShaped(client->frame->window()));
}

TEST_F(SwmTest, BecomingShapedAtRuntimeRedecorates) {
  StartWm();
  auto app = Spawn("xeyes", {"xeyes", "XEyes"}, {0, 0, 20, 20});
  EXPECT_EQ(Managed(*app)->decoration_name, "openLook");
  app->display().ShapeSetMask(app->window(), xbase::CircleMask(20));
  wm_->ProcessEvents();
  ManagedClient* client = Managed(*app);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->shaped);
  EXPECT_EQ(client->decoration_name, "shapeit");
}

TEST_F(SwmTest, WmNameChangeUpdatesTitle) {
  StartWm();
  auto app = Spawn("ed", {"ed", "Editor"});
  xlib::SetWmName(&app->display(), app->window(), "ed: main.c");
  wm_->ProcessEvents();
  ManagedClient* client = Managed(*app);
  EXPECT_EQ(client->name, "ed: main.c");
  EXPECT_EQ(static_cast<oi::Button*>(client->name_object)->label(), "ed: main.c");
}

TEST_F(SwmTest, ConfigureRequestResizesThroughDecoration) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"}, {0, 0, 40, 12});
  ManagedClient* client = Managed(*app);
  xbase::Rect before = client->FrameGeometry();

  app->RequestMoveResize({0, 0, 60, 20});
  wm_->ProcessEvents();
  app->ProcessEvents();

  EXPECT_EQ(server_->GetGeometry(app->window())->size(), (xbase::Size{60, 20}));
  xbase::Rect after = client->FrameGeometry();
  EXPECT_EQ(after.width - before.width, 20);
  EXPECT_EQ(after.height - before.height, 8);
  // The client panel matches the client.
  EXPECT_EQ(client->client_panel->geometry().size(), (xbase::Size{60, 20}));
}

TEST_F(SwmTest, ConfigureRequestMovesInDesktopCoordinates) {
  StartWm("swm*virtualDesktop: 600x300\nswm*panner: False\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  app->RequestMoveResize({123, 45, 30, 10});
  wm_->ProcessEvents();
  EXPECT_EQ(client->ClientDesktopPosition(), (xbase::Point{123, 45}));
}

TEST_F(SwmTest, SizeHintsConstrainClientSize) {
  StartWm();
  xlib::ClientAppConfig config;
  config.name = "xterm";
  config.wm_class = {"xterm", "XTerm"};
  config.geometry = {0, 0, 41, 17};
  xlib::ClientApp app(server_.get(), config);
  xproto::SizeHints hints;
  hints.flags = xproto::kPMinSize | xproto::kPResizeInc;
  hints.min_width = 10;
  hints.min_height = 10;
  hints.width_inc = 10;
  hints.height_inc = 5;
  xlib::SetWmNormalHints(&app.display(), app.window(), hints);
  app.Map();
  wm_->ProcessEvents();
  // 41x17 snaps to 40x15 (base 10 + increments).
  EXPECT_EQ(server_->GetGeometry(app.window())->size(), (xbase::Size{40, 15}));
}

TEST_F(SwmTest, WithdrawUnmanagesAndReparentsBack) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ASSERT_NE(Managed(*app), nullptr);
  app->Unmap();  // ICCCM withdrawal.
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app), nullptr);
  EXPECT_EQ(server_->QueryTree(app->window())->parent, server_->RootWindow(0));
  auto state = xlib::GetWmState(&app->display(), app->window());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->state, xproto::WmState::kWithdrawn);
  // Re-mapping manages it again.
  app->Map();
  wm_->ProcessEvents();
  EXPECT_NE(Managed(*app), nullptr);
}

TEST_F(SwmTest, ClientDestructionCleansUp) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  xproto::WindowId window = app->window();
  ManagedClient* client = Managed(*app);
  xproto::WindowId frame = client->frame->window();
  app->display().DestroyWindow(window);
  wm_->ProcessEvents();
  EXPECT_EQ(wm_->FindClient(window), nullptr);
  EXPECT_FALSE(server_->WindowExists(frame));
  EXPECT_EQ(wm_->ClientCount(), 0u);
}

TEST_F(SwmTest, WmShutdownReparentsClientsBack) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ASSERT_NE(Managed(*app), nullptr);
  wm_.reset();  // WM exits cleanly.
  EXPECT_EQ(server_->QueryTree(app->window())->parent, server_->RootWindow(0));
  EXPECT_TRUE(server_->WindowExists(app->window()));
}

TEST_F(SwmTest, ExistingWindowsManagedAtStartup) {
  // Clients running before the WM starts get managed by Start().
  server_ = std::make_unique<xserver::Server>(
      std::vector<xserver::ScreenConfig>{xserver::ScreenConfig{200, 100, false}});
  xlib::ClientAppConfig config;
  config.name = "early";
  config.wm_class = {"early", "Early"};
  auto app = std::make_unique<xlib::ClientApp>(server_.get(), config);
  app->Map();  // No WM yet: maps directly.
  ASSERT_TRUE(server_->IsViewable(app->window()));

  swm::WindowManager::Options options;
  options.template_name = "openlook";
  wm_ = std::make_unique<swm::WindowManager>(server_.get(), options);
  ASSERT_TRUE(wm_->Start());
  ManagedClient* client = wm_->FindClient(app->window());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(server_->IsViewable(app->window()));
  EXPECT_NE(server_->QueryTree(app->window())->parent, server_->RootWindow(0));
}

TEST_F(SwmTest, SyntheticConfigureTellsClientItsDesktopPosition) {
  StartWm();
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  wm_->MoveFrameTo(client, {50, 30});
  wm_->ProcessEvents();
  app->ProcessEvents();
  EXPECT_EQ(app->believed_root_position(), client->ClientDesktopPosition());
}

TEST_F(SwmTest, MultiScreenManagement) {
  StartWm("", "openlook",
          {xserver::ScreenConfig{200, 100, false}, xserver::ScreenConfig{100, 80, true}});
  xlib::ClientAppConfig config;
  config.name = "s1app";
  config.wm_class = {"s1app", "S1App"};
  config.screen = 1;
  xlib::ClientApp app(server_.get(), config);
  app.Map();
  wm_->ProcessEvents();
  ManagedClient* client = wm_->FindClient(app.window());
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->screen, 1);
  // Frame lives on screen 1's tree.
  EXPECT_EQ(server_->ScreenOfWindow(client->frame->window()), 1);
}

TEST_F(SwmTest, PerScreenResources) {
  // §3: per-screen configuration — different decorations per screen.
  StartWm(
      "swm.color.screen0*decoration: openLook\n"
      "swm.monochrome.screen1*decoration: shapeit\n",
      "openlook",
      {xserver::ScreenConfig{200, 100, false}, xserver::ScreenConfig{100, 80, true}});
  auto app0 = Spawn("a", {"a", "A"});
  xlib::ClientAppConfig config;
  config.name = "b";
  config.wm_class = {"b", "B"};
  config.screen = 1;
  xlib::ClientApp app1(server_.get(), config);
  app1.Map();
  wm_->ProcessEvents();
  EXPECT_EQ(Managed(*app0)->decoration_name, "openLook");
  EXPECT_EQ(wm_->FindClient(app1.window())->decoration_name, "shapeit");
}

TEST_F(SwmTest, TemplateSelectionMotif) {
  StartWm("", "motif");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  ManagedClient* client = Managed(*app);
  EXPECT_EQ(client->decoration_name, "motif");
  EXPECT_NE(client->frame->FindDescendant("minimize"), nullptr);
  EXPECT_NE(client->frame->FindDescendant("maximize"), nullptr);
}

TEST_F(SwmTest, TemplateResourceOverridesOption) {
  StartWm("swm*template: motif\n", "openlook");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  EXPECT_EQ(Managed(*app)->decoration_name, "motif");
}

TEST_F(SwmTest, UserResourceOverridesTemplate) {
  StartWm("Swm*button.nail.label: S\n");
  auto app = Spawn("xterm", {"xterm", "XTerm"});
  oi::Object* nail = Managed(*app)->frame->FindDescendant("nail");
  ASSERT_NE(nail, nullptr);
  EXPECT_EQ(static_cast<oi::Button*>(nail)->label(), "S");
}

TEST_F(SwmTest, DefaultPlacementCascades) {
  StartWm();
  auto a = Spawn("a", {"a", "A"});
  auto b = Spawn("b", {"b", "B"});
  xbase::Rect ga = Managed(*a)->FrameGeometry();
  xbase::Rect gb = Managed(*b)->FrameGeometry();
  EXPECT_NE(ga.origin(), gb.origin());
  EXPECT_EQ(gb.x - ga.x, 24);
  EXPECT_EQ(gb.y - ga.y, 24);
}

}  // namespace
}  // namespace swm_test
