// Deterministic trace record/replay (docs/PROTOCOL.md): a recorded session —
// connects, request bytes exactly as the parser saw them (wire mutations
// included), simulated input — must replay onto a fresh server to the same
// observable state, every time.  The checked-in chaos-seed traces under
// tests/traces/ are the regression corpus: streams that once carried live
// fault-plan mutations now replay bit-identically with no fault plan at all.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/xlib/display.h"
#include "src/xproto/trace.h"
#include "src/xserver/replay.h"
#include "src/xserver/server.h"

namespace swm_test {
namespace {

using xproto::Trace;
using xserver::FingerprintServer;
using xserver::ReplayResult;
using xserver::ReplayTrace;
using xserver::Server;
using xserver::ServerFingerprint;

// A small scripted session issued through wire-mode Displays (so every
// request travels as bytes and lands in the recorder) plus simulated input.
void RunScriptedSession(Server* server) {
  xlib::Display a(server, "host-a");
  a.set_wire_mode(true);
  xlib::Display b(server, "host-b");
  b.set_wire_mode(true);

  xproto::WindowId root = server->RootWindow(0);
  xproto::WindowId wa = a.CreateWindow(root, {10, 10, 40, 20}, 1);
  ASSERT_NE(wa, xproto::kNone);
  a.SetWindowBackground(wa, '.');
  a.MapWindow(wa);
  xserver::DrawOp op;
  op.kind = xserver::DrawOp::Kind::kFillRect;
  op.rect = {0, 0, 10, 5};
  op.fill = '#';
  a.Draw(wa, op);

  xproto::WindowId wb = b.CreateWindow(root, {60, 30, 30, 15});
  b.MapWindow(wb);
  b.MoveWindow(wb, {70, 35});
  b.RaiseWindow(wb);

  // Queries too, so the recorded session carries reply frames (kReply
  // records) and replay can verify the server-to-client direction.
  a.SetStringProperty(wa, "WM_NAME", "scripted");
  (void)a.GetGeometry(wa);
  (void)a.QueryTree(root);
  (void)a.GetStringProperty(wa, "WM_NAME");
  (void)b.InternAtom("WM_PROTOCOLS");
  (void)b.GetWindowAttributes(wb);
  (void)b.TranslateCoordinates(wb, root, {0, 0});

  server->SimulateMotion({75, 40});
  server->SimulateButton(1, true);
  server->SimulateButton(1, false);
  server->SimulateKey('x', true);
  server->SimulateKey('x', false);
  server->WarpPointer(0, {5, 5});

  a.UnmapWindow(wa);
  a.MapWindow(wa);
  b.DestroyWindow(wb);
}

TEST(TraceReplayTest, ScriptedSessionReplaysToIdenticalState) {
  Server recorded;
  xproto::TraceRecorder recorder;
  recorded.SetTraceRecorder(&recorder);
  RunScriptedSession(&recorded);
  recorded.SetTraceRecorder(nullptr);
  recorder.RecordExpect(recorded.TotalRequests(), recorded.render_stats().draw_ops,
                        static_cast<uint64_t>(recorded.render_stats().pixels_drawn));
  Trace trace = recorder.Take();
  ASSERT_FALSE(trace.records.empty());

  Server replay1;
  ReplayResult r1 = ReplayTrace(&replay1, trace);
  EXPECT_TRUE(r1.expectations_met) << r1.mismatch;
  EXPECT_EQ(r1.parse_errors, 0u);

  Server replay2;
  ReplayResult r2 = ReplayTrace(&replay2, trace);

  // Recorded run and both replays converge on the same observable state —
  // reply stream included (the fingerprint hashes every emitted reply frame).
  ServerFingerprint original = FingerprintServer(recorded);
  EXPECT_EQ(FingerprintServer(replay1), original);
  EXPECT_EQ(FingerprintServer(replay2), original);
  EXPECT_EQ(r1.records_applied, r2.records_applied);
  EXPECT_EQ(r1.requests_dispatched, r2.requests_dispatched);
  EXPECT_GT(r1.recorded_replies, 0u) << "the scripted session issues queries";
  EXPECT_TRUE(r1.replies_match) << r1.reply_mismatch;
  EXPECT_TRUE(r2.replies_match) << r2.reply_mismatch;
}

TEST(TraceReplayTest, TransportReplayMatchesDirectReplayByteForByte) {
  // The acceptance bar: a recorded session replays byte-identically when
  // every traced client is routed through a real socketpair Connection
  // instead of direct dispatch — same fingerprint, same reply stream.
  Server recorded;
  xproto::TraceRecorder recorder;
  recorded.SetTraceRecorder(&recorder);
  RunScriptedSession(&recorded);
  recorded.SetTraceRecorder(nullptr);
  recorder.RecordExpect(recorded.TotalRequests(), recorded.render_stats().draw_ops,
                        static_cast<uint64_t>(recorded.render_stats().pixels_drawn));
  Trace trace = recorder.Take();

  Server direct;
  ReplayResult rd = ReplayTrace(&direct, trace);
  ASSERT_TRUE(rd.expectations_met) << rd.mismatch;

  xserver::ReplayOptions transport_options;
  transport_options.use_transport = true;
  Server t1;
  ReplayResult rt1 = ReplayTrace(&t1, trace, transport_options);
  Server t2;
  ReplayResult rt2 = ReplayTrace(&t2, trace, transport_options);

  EXPECT_TRUE(rt1.expectations_met) << rt1.mismatch;
  EXPECT_GT(rt1.recorded_replies, 0u);
  EXPECT_TRUE(rt1.replies_match) << rt1.reply_mismatch;
  EXPECT_TRUE(rt2.replies_match) << rt2.reply_mismatch;
  EXPECT_EQ(rt1.requests_dispatched, rd.requests_dispatched);
  EXPECT_EQ(rt1.replayed_reply_hash, rd.replayed_reply_hash)
      << "the socketpair transport must carry the same reply bytes direct "
         "dispatch produces";

  ServerFingerprint original = FingerprintServer(recorded);
  EXPECT_EQ(FingerprintServer(direct), original);
  EXPECT_EQ(FingerprintServer(t1), original);
  EXPECT_EQ(FingerprintServer(t2), original);
}

TEST(TraceReplayTest, MutatedStreamReplaysWithoutTheFaultPlan) {
  // Record with live wire mutations: the recorder sees post-mutation bytes,
  // so replay needs no fault plan and reproduces the mangled stream exactly —
  // parse errors included.
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  Server recorded;
  xproto::TraceRecorder recorder;
  recorded.SetTraceRecorder(&recorder);

  xserver::FaultPlan plan;
  plan.seed = 77;
  plan.bitflip_request_permille = 400;
  plan.lie_length_permille = 200;
  plan.truncate_request_permille = 200;
  plan.scramble_opcode_permille = 200;
  recorded.InstallFaultPlan(plan);

  xproto::ClientId hostile = recorded.Connect("hostile");
  xproto::WindowId root = recorded.RootWindow(0);
  for (int i = 0; i < 50; ++i) {
    xproto::WireWriter w;
    xproto::EncodeRequest(
        xproto::CreateWindowRequest{.parent = root, .geometry = {i, i, 10, 5}}, &w);
    xproto::EncodeRequest(xproto::MapWindowRequest{.window = static_cast<uint32_t>(i + 1)},
                          &w);
    recorded.DispatchBytes(hostile, w.span());
  }
  ASSERT_GT(recorded.fault_counters().WireMutations(), 0u);
  ASSERT_GT(recorded.wire_parse_errors(), 0u) << "mutations should have broken frames";

  recorded.ClearFaultPlan();
  recorded.SetTraceRecorder(nullptr);
  recorder.RecordExpect(recorded.TotalRequests(), recorded.render_stats().draw_ops,
                        static_cast<uint64_t>(recorded.render_stats().pixels_drawn));
  Trace trace = recorder.Take();

  Server replay1;
  ReplayResult r1 = ReplayTrace(&replay1, trace);
  Server replay2;
  ReplayResult r2 = ReplayTrace(&replay2, trace);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);

  EXPECT_TRUE(r1.expectations_met) << r1.mismatch;
  EXPECT_EQ(FingerprintServer(replay1), FingerprintServer(replay2));
  EXPECT_EQ(FingerprintServer(replay1), FingerprintServer(recorded));
  EXPECT_EQ(replay1.wire_parse_errors(), recorded.wire_parse_errors())
      << "replay reproduces every parse error without a fault plan";
  EXPECT_EQ(r1.requests_dispatched, r2.requests_dispatched);
  EXPECT_EQ(r1.parse_errors, r2.parse_errors);
}

TEST(TraceReplayTest, SerializedTraceSurvivesTheDiskRoundTrip) {
  Server recorded;
  xproto::TraceRecorder recorder;
  recorded.SetTraceRecorder(&recorder);
  RunScriptedSession(&recorded);
  recorded.SetTraceRecorder(nullptr);

  std::string path = ::testing::TempDir() + "/session.swmtrace";
  ASSERT_TRUE(xproto::WriteTraceFile(path, recorder.trace()));
  xproto::ParseError error;
  std::optional<Trace> loaded = xproto::ReadTraceFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << xproto::ParseErrorText(error);

  Server replay;
  ReplayTrace(&replay, *loaded);
  EXPECT_EQ(FingerprintServer(replay), FingerprintServer(recorded));
}

// ---- Checked-in chaos-seed corpus -------------------------------------------

class TraceCorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceCorpusTest, CorpusTraceReplaysDeterministically) {
  xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
  std::string path = std::string(SWM_TRACE_DIR) + "/" + GetParam();
  xproto::ParseError error;
  std::optional<Trace> trace = xproto::ReadTraceFile(path, &error);
  ASSERT_TRUE(trace.has_value()) << path << ": " << xproto::ParseErrorText(error);
  ASSERT_FALSE(trace->records.empty());

  Server replay1;
  ReplayResult r1 = ReplayTrace(&replay1, *trace);
  Server replay2;
  ReplayResult r2 = ReplayTrace(&replay2, *trace);
  xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);

  EXPECT_GT(r1.expectations_checked, 0u) << "corpus traces carry an expect footer";
  EXPECT_TRUE(r1.expectations_met) << r1.mismatch;
  EXPECT_TRUE(r2.expectations_met) << r2.mismatch;
  EXPECT_EQ(FingerprintServer(replay1), FingerprintServer(replay2));
  EXPECT_EQ(replay1.wire_parse_errors(), replay2.wire_parse_errors());
  EXPECT_EQ(r1.replies_match, r2.replies_match);

  // The duplex traces were recorded through real framed connections: they
  // carry kReply records and replay cleanly over socketpair transport too,
  // with the reply stream verified in both directions.  (The v1 chaos
  // traces predate connections; their hostile streams keep dispatching
  // mid-buffer after parse errors, which a lifecycle-enforcing Connection
  // deliberately refuses to do.)
  if (GetParam().rfind("duplex", 0) == 0) {
    EXPECT_GT(r1.recorded_replies, 0u);
    EXPECT_TRUE(r1.replies_match) << r1.reply_mismatch;

    xserver::ReplayOptions transport_options;
    transport_options.use_transport = true;
    xbase::SetMinLogSeverity(xbase::LogSeverity::kFatal);
    Server transport_replay;
    ReplayResult rt = ReplayTrace(&transport_replay, *trace, transport_options);
    xbase::SetMinLogSeverity(xbase::LogSeverity::kWarning);
    EXPECT_TRUE(rt.expectations_met) << rt.mismatch;
    EXPECT_TRUE(rt.replies_match) << rt.reply_mismatch;
    EXPECT_EQ(FingerprintServer(transport_replay), FingerprintServer(replay1));
  }
}

INSTANTIATE_TEST_SUITE_P(CheckedInTraces, TraceCorpusTest,
                         ::testing::Values("chaos_seed_1.swmtrace",
                                           "chaos_seed_2.swmtrace",
                                           "chaos_seed_3.swmtrace",
                                           "chaos_seed_4.swmtrace",
                                           "duplex_seed_1.swmtrace",
                                           "duplex_seed_2.swmtrace",
                                           "duplex_seed_3.swmtrace",
                                           "duplex_seed_4.swmtrace"));

}  // namespace
}  // namespace swm_test
